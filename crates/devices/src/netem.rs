//! Netem: a deterministic link conditioner for the virtual switch.
//!
//! The paper's evaluation runs appliances over a real gigabit link; real
//! links lose, reorder, duplicate, delay and corrupt frames, and whole
//! segments of the network partition and heal. The simulated switch is a
//! perfect wire by default, so the TCP retransmit machinery, HTTP retry
//! paths and DNS timeouts are never exercised end-to-end. [`Netem`] is the
//! fault plan that fixes that: every draw comes from a testkit xoshiro
//! PRNG forked from `MIRAGE_TEST_SEED`, every fault is counted in
//! [`NetemStats`], and every decision is appended to a schedule log so two
//! same-seed runs can be diffed byte-for-byte.
//!
//! The same module hosts [`DiskFaultPlan`] — the storage-layer half of the
//! fault model (transient read/write errors and torn writes), applied by
//! the blkback service loop against the same seed discipline.

use std::sync::Arc;

use mirage_cstruct::PktBuf;
use mirage_hypervisor::{Dur, Time};
use mirage_testkit::rng::Rng;
use mirage_testkit::sync::Mutex;

/// Per-link fault plan. All probabilities are in `[0, 1]`; the default is
/// the perfect wire (every field zero), so an all-default `NetemConfig`
/// conditions nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetemConfig {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a random bit of the frame is flipped in flight
    /// (manifests as a checksum failure — i.e. loss — at L4).
    pub corrupt: f64,
    /// Probability a frame is held back by [`reorder_hold`](Self::reorder_hold)
    /// so later frames overtake it (bounded reordering).
    pub reorder: f64,
    /// How long a reordered frame is held beyond its normal delivery time.
    pub reorder_hold: Dur,
    /// Fixed one-way delay added to every frame.
    pub delay: Dur,
    /// Uniform random extra delay in `[0, jitter]` added per frame.
    pub jitter: Dur,
    /// Bidirectional partition windows `[from, until)` against the
    /// hypervisor virtual clock: frames offered inside a window are
    /// dropped (counted separately from random loss).
    pub partitions: Vec<(Time, Time)>,
}

impl NetemConfig {
    /// A plan that only drops, with probability `p`.
    pub fn lossy(p: f64) -> NetemConfig {
        NetemConfig {
            drop: p,
            ..NetemConfig::default()
        }
    }

    /// True when every fault knob is zero (the perfect wire).
    pub fn is_perfect(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.reorder == 0.0
            && self.delay == Dur::ZERO
            && self.jitter == Dur::ZERO
            && self.partitions.is_empty()
    }
}

/// Per-fault counters plus the full decision log.
///
/// `schedule` records one line per fault event (`"{ns} #{seq} drop"` and
/// friends); two runs under the same seed must produce byte-identical
/// schedules, which `tests/chaos.rs` asserts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetemStats {
    /// Frames offered to the conditioner.
    pub offered: u64,
    /// Frames randomly dropped.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames with a bit flipped.
    pub corrupted: u64,
    /// Frames held back past their delivery time.
    pub reordered: u64,
    /// Frames given a nonzero delay (fixed delay and/or jitter).
    pub delayed: u64,
    /// Frames swallowed by an active partition window.
    pub partitioned: u64,
    /// One line per fault decision, in offer order.
    pub schedule: Vec<String>,
}

impl NetemStats {
    /// Every frame the conditioner refused to deliver.
    pub fn total_lost(&self) -> u64 {
        self.dropped + self.partitioned
    }
}

/// The link conditioner: owns the fault plan, the seeded PRNG and the
/// shared stats. Attach to a [`DriverDomain`](crate::DriverDomain) with
/// [`set_netem`](crate::DriverDomain::set_netem).
pub struct Netem {
    config: NetemConfig,
    rng: Rng,
    seq: u64,
    stats: Arc<Mutex<NetemStats>>,
}

impl Netem {
    /// A conditioner over `config` drawing from `rng`.
    pub fn new(config: NetemConfig, rng: Rng) -> Netem {
        Netem {
            config,
            rng,
            seq: 0,
            stats: Arc::new(Mutex::new(NetemStats::default())),
        }
    }

    /// A conditioner whose PRNG is forked from `seed` under a named
    /// stream, so independent links under one `MIRAGE_TEST_SEED` draw
    /// independent (but reproducible) sequences.
    pub fn from_seed(config: NetemConfig, seed: u64, stream: &str) -> Netem {
        Netem::new(config, Rng::for_stream(seed, stream))
    }

    /// Shared counters handle (readable while the domain runs).
    pub fn stats_handle(&self) -> Arc<Mutex<NetemStats>> {
        Arc::clone(&self.stats)
    }

    /// The configured fault plan.
    pub fn config(&self) -> &NetemConfig {
        &self.config
    }

    fn log(stats: &mut NetemStats, now: Time, seq: u64, what: &str) {
        stats.schedule.push(format!("{} #{seq} {what}", now.as_nanos()));
    }

    /// Condition one frame offered at virtual time `now`.
    ///
    /// Returns the (possibly empty) set of `(deliver_at, frame)` copies the
    /// link will actually carry. Draw order is fixed — partition, drop,
    /// corrupt, duplicate, jitter, reorder — so a seeded run is a pure
    /// function of the offered frame sequence.
    pub fn apply(&mut self, now: Time, frame: PktBuf) -> Vec<(Time, PktBuf)> {
        let seq = self.seq;
        self.seq += 1;
        let mut stats = self.stats.lock();
        stats.offered += 1;

        // Timed partition: swallow, counted apart from random loss.
        if self
            .config
            .partitions
            .iter()
            .any(|&(from, until)| now >= from && now < until)
        {
            stats.partitioned += 1;
            Self::log(&mut stats, now, seq, "partitioned");
            return Vec::new();
        }

        // Random loss.
        if self.config.drop > 0.0 && self.rng.gen_bool(self.config.drop) {
            stats.dropped += 1;
            Self::log(&mut stats, now, seq, "drop");
            return Vec::new();
        }

        // Bit corruption: flip one random bit of a copy. The L4 checksum
        // rejects the frame downstream, so this is loss the stack has to
        // *detect* rather than loss the link admits to.
        let frame = if self.config.corrupt > 0.0 && self.rng.gen_bool(self.config.corrupt) {
            let mut bytes = frame.to_vec();
            let bit = self.rng.gen_index(bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            stats.corrupted += 1;
            Self::log(&mut stats, now, seq, "corrupt");
            PktBuf::from_vec(bytes)
        } else {
            frame
        };

        // Base delivery time: fixed delay plus uniform jitter.
        let mut extra = self.config.delay;
        if self.config.jitter > Dur::ZERO {
            extra = extra + Dur::nanos(self.rng.gen_range(0..=self.config.jitter.as_nanos()));
        }
        if extra > Dur::ZERO {
            stats.delayed += 1;
        }
        let deliver_at = now + extra;

        let mut out = Vec::with_capacity(2);

        // Duplication: the copy takes the base delivery slot.
        if self.config.duplicate > 0.0 && self.rng.gen_bool(self.config.duplicate) {
            stats.duplicated += 1;
            Self::log(&mut stats, now, seq, "duplicate");
            out.push((deliver_at, frame.clone()));
        }

        // Bounded reordering: hold the original back so frames offered
        // after it (with smaller delays) overtake it on the wire.
        let deliver_at = if self.config.reorder > 0.0 && self.rng.gen_bool(self.config.reorder) {
            stats.reordered += 1;
            Self::log(&mut stats, now, seq, "reorder");
            deliver_at + self.config.reorder_hold
        } else {
            deliver_at
        };
        out.push((deliver_at, frame));
        out
    }
}

impl std::fmt::Debug for Netem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Netem")
            .field("config", &self.config)
            .field("seq", &self.seq)
            .finish()
    }
}

/// Seeded storage faults, attached to a
/// [`DiskProfile`](crate::blk::DiskProfile). Rates are parts-per-million
/// so the profile stays `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskFaultPlan {
    /// Transient read failure rate (completion `ok = false`, data intact).
    pub read_error_ppm: u32,
    /// Transient write failure rate (completion `ok = false`, nothing
    /// persisted).
    pub write_error_ppm: u32,
    /// Torn write rate: only a prefix of the request's sectors persists
    /// and the completion reports failure — the on-disk state is the
    /// partial write a power cut would leave.
    pub torn_write_ppm: u32,
}

impl DiskFaultPlan {
    /// Draw helper: true with probability `ppm / 1_000_000`.
    pub(crate) fn hit(rng: &mut Rng, ppm: u32) -> bool {
        ppm > 0 && rng.gen_range(0..1_000_000u32) < ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> PktBuf {
        PktBuf::from_vec(vec![0xEE; n])
    }

    #[test]
    fn perfect_config_passes_everything_unchanged() {
        let mut nm = Netem::from_seed(NetemConfig::default(), 7, "t");
        for i in 0..100 {
            let t = Time::from_nanos(i);
            let out = nm.apply(t, frame(64));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, t, "no delay on the perfect wire");
            assert_eq!(&out[0].1[..], &[0xEE; 64][..]);
        }
        let s = nm.stats_handle();
        let s = s.lock();
        assert_eq!(s.offered, 100);
        assert_eq!(s.total_lost(), 0);
        assert!(s.schedule.is_empty(), "no fault events on a perfect wire");
    }

    #[test]
    fn drop_rate_is_roughly_honoured_and_counted() {
        let mut nm = Netem::from_seed(NetemConfig::lossy(0.2), 42, "loss");
        let mut delivered = 0u64;
        for i in 0..10_000 {
            if !nm.apply(Time::from_nanos(i), frame(64)).is_empty() {
                delivered += 1;
            }
        }
        let s = nm.stats_handle();
        let s = s.lock();
        assert_eq!(s.offered, 10_000);
        assert_eq!(s.dropped + delivered, 10_000);
        assert!(
            (1500..2500).contains(&s.dropped),
            "20% loss over 10k frames, got {}",
            s.dropped
        );
        assert_eq!(s.schedule.len() as u64, s.dropped);
    }

    #[test]
    fn same_seed_produces_byte_identical_schedules() {
        let cfg = NetemConfig {
            drop: 0.1,
            duplicate: 0.05,
            corrupt: 0.02,
            reorder: 0.1,
            reorder_hold: Dur::micros(50),
            delay: Dur::micros(10),
            jitter: Dur::micros(5),
            partitions: vec![(Time::from_nanos(3000), Time::from_nanos(6000))],
        };
        let run = |seed| {
            let mut nm = Netem::from_seed(cfg.clone(), seed, "det");
            let mut deliveries = Vec::new();
            for i in 0..2000 {
                deliveries.extend(
                    nm.apply(Time::from_nanos(i * 10), frame(64))
                        .into_iter()
                        .map(|(t, f)| (t.as_nanos(), f.len())),
                );
            }
            let s = nm.stats_handle();
            let s = s.lock().clone();
            (deliveries, s)
        };
        let (d1, s1) = run(99);
        let (d2, s2) = run(99);
        assert_eq!(d1, d2, "same seed, same deliveries");
        assert_eq!(s1, s2, "same seed, same stats + schedule");
        let (d3, s3) = run(100);
        assert!(
            d1 != d3 || s1 != s3,
            "different seed should produce a different schedule"
        );
    }

    #[test]
    fn partitions_swallow_frames_only_inside_the_window() {
        let cfg = NetemConfig {
            partitions: vec![(Time::from_nanos(100), Time::from_nanos(200))],
            ..NetemConfig::default()
        };
        let mut nm = Netem::from_seed(cfg, 1, "part");
        assert_eq!(nm.apply(Time::from_nanos(99), frame(20)).len(), 1);
        assert_eq!(nm.apply(Time::from_nanos(100), frame(20)).len(), 0);
        assert_eq!(nm.apply(Time::from_nanos(199), frame(20)).len(), 0);
        assert_eq!(nm.apply(Time::from_nanos(200), frame(20)).len(), 1);
        let s = nm.stats_handle();
        assert_eq!(s.lock().partitioned, 2);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = NetemConfig {
            corrupt: 1.0,
            ..NetemConfig::default()
        };
        let mut nm = Netem::from_seed(cfg, 5, "bits");
        let out = nm.apply(Time::ZERO, frame(64));
        assert_eq!(out.len(), 1);
        let diff: u32 = out[0]
            .1
            .iter()
            .zip([0xEEu8; 64].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
    }

    #[test]
    fn duplicate_and_reorder_produce_two_copies_and_a_held_original() {
        let cfg = NetemConfig {
            duplicate: 1.0,
            reorder: 1.0,
            reorder_hold: Dur::micros(100),
            ..NetemConfig::default()
        };
        let mut nm = Netem::from_seed(cfg, 3, "dup");
        let out = nm.apply(Time::ZERO, frame(32));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, Time::ZERO, "duplicate ships on time");
        assert_eq!(
            out[1].0,
            Time::ZERO + Dur::micros(100),
            "original held for the reorder window"
        );
    }

    #[test]
    fn per_fault_counters_count_individually() {
        // Each fault class alone, at certainty or in a known window, must
        // tick exactly its own counter — no cross-talk between classes.
        let mut corrupt = Netem::from_seed(
            NetemConfig {
                corrupt: 1.0,
                ..NetemConfig::default()
            },
            21,
            "cnt-corrupt",
        );
        for i in 0..50 {
            assert_eq!(corrupt.apply(Time::from_nanos(i), frame(64)).len(), 1);
        }
        let s = corrupt.stats_handle();
        let s = s.lock();
        assert_eq!(s.corrupted, 50);
        assert_eq!(
            (s.dropped, s.duplicated, s.partitioned, s.reordered),
            (0, 0, 0, 0)
        );
        assert_eq!(s.schedule.len(), 50, "one schedule line per decision");
        drop(s);

        let mut dup = Netem::from_seed(
            NetemConfig {
                duplicate: 1.0,
                ..NetemConfig::default()
            },
            21,
            "cnt-dup",
        );
        for i in 0..50 {
            assert_eq!(dup.apply(Time::from_nanos(i), frame(64)).len(), 2);
        }
        let s = dup.stats_handle();
        let s = s.lock();
        assert_eq!(s.duplicated, 50);
        assert_eq!(
            (s.dropped, s.corrupted, s.partitioned, s.reordered),
            (0, 0, 0, 0)
        );
        drop(s);

        let mut part = Netem::from_seed(
            NetemConfig {
                partitions: vec![(Time::from_nanos(10), Time::from_nanos(30))],
                ..NetemConfig::default()
            },
            21,
            "cnt-part",
        );
        for i in 0..50 {
            part.apply(Time::from_nanos(i), frame(64));
        }
        let s = part.stats_handle();
        let s = s.lock();
        assert_eq!(s.partitioned, 20, "exactly the frames inside the window");
        assert_eq!(
            (s.dropped, s.corrupted, s.duplicated, s.reordered),
            (0, 0, 0, 0)
        );
        assert_eq!(s.offered, 50);
        assert_eq!(s.total_lost(), 20);
    }

    #[test]
    fn disk_fault_plan_rates_are_honoured() {
        let mut rng = Rng::for_stream(11, "disk");
        let plan = DiskFaultPlan {
            read_error_ppm: 100_000, // 10%
            ..DiskFaultPlan::default()
        };
        let hits = (0..10_000)
            .filter(|_| DiskFaultPlan::hit(&mut rng, plan.read_error_ppm))
            .count();
        assert!((700..1300).contains(&hits), "10% in ppm, got {hits}");
        assert!(!DiskFaultPlan::hit(&mut rng, 0), "zero rate never fires");
    }
}
