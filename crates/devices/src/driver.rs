//! Driver traits and the backend factory — the functor seam.
//!
//! Mirage programs device consumers against abstract driver signatures
//! and swaps implementations underneath (functor-driven development);
//! this module is that seam for the two ring ABIs. Consumers hold a
//! [`NetDriver`] or [`BlkDriver`] trait object and a stack-facing handle;
//! which transport carries the bytes — the Xen-style descriptor ring
//! ([`crate::netfront::Netfront`], [`crate::blk::Blkfront`]) or the
//! virtio split virtqueue ([`crate::virtio::VirtioNet`],
//! [`crate::virtio::VirtioBlk`]) — is a [`Backend`] value chosen per
//! device at domain-creation time, one flag end to end:
//!
//! ```ignore
//! let backend = Backend::from_env(); // MIRAGE_BACKEND=xen|virtio
//! let (net, handle) = backend.net(xs.clone(), "eth0", mac, CopyDiscipline::ZeroCopy);
//! guest.add_device(net); // Box<dyn NetDriver> upcasts to Box<dyn DeviceService>
//! ```
//!
//! The conformance suite (`tests/conformance.rs`) runs identical
//! workloads over both values and diffs the application transcripts.

use mirage_runtime::DeviceService;

use crate::blk::{BlkHandle, Blkfront};
use crate::netfront::{CopyDiscipline, NetHandle, Netfront};
use crate::virtio::{VirtioBlk, VirtioNet};
use crate::xenstore::Xenstore;

/// Which ring ABI a device speaks to the driver domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Xen-style descriptor rings: one shared page per ring, requests
    /// and responses in place, `req_event`/`rsp_event` suppression.
    #[default]
    XenRing,
    /// Virtio split virtqueues: descriptor table + avail/used rings,
    /// EVENT_IDX suppression, per-queue event channels.
    Virtio,
}

impl Backend {
    /// Both backends, in fixed order — the axis differential tests
    /// iterate over.
    pub const ALL: [Backend; 2] = [Backend::XenRing, Backend::Virtio];

    /// Parses `"xen"` / `"virtio"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "xen" | "xenring" | "xen-ring" => Some(Backend::XenRing),
            "virtio" => Some(Backend::Virtio),
            _ => None,
        }
    }

    /// Reads `MIRAGE_BACKEND` from the environment (default:
    /// [`Backend::XenRing`]).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a misspelt backend silently
    /// falling back to the default would invalidate a differential run.
    pub fn from_env() -> Backend {
        match std::env::var("MIRAGE_BACKEND") {
            Ok(v) => Backend::parse(&v)
                .unwrap_or_else(|| panic!("MIRAGE_BACKEND={v:?}: expected \"xen\" or \"virtio\"")),
            Err(_) => Backend::default(),
        }
    }

    /// Stable lowercase name (`xen` / `virtio`), as accepted by
    /// [`Backend::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::XenRing => "xen",
            Backend::Virtio => "virtio",
        }
    }

    /// Creates a single-queue network device over this backend.
    pub fn net(
        self,
        xs: Xenstore,
        name: impl Into<String>,
        mac: [u8; 6],
        discipline: CopyDiscipline,
    ) -> (Box<dyn NetDriver>, NetHandle) {
        let (driver, mut handles) = self.net_multiqueue(xs, name, mac, discipline, 1);
        (driver, handles.remove(0))
    }

    /// Creates a multi-queue network device over this backend: one
    /// stack-facing handle per queue, for `Stack::spawn_sharded`-style
    /// per-core consumers.
    pub fn net_multiqueue(
        self,
        xs: Xenstore,
        name: impl Into<String>,
        mac: [u8; 6],
        discipline: CopyDiscipline,
        queues: usize,
    ) -> (Box<dyn NetDriver>, Vec<NetHandle>) {
        match self {
            Backend::XenRing => {
                let (front, handles) =
                    Netfront::new_multiqueue(xs, name, mac, discipline, queues);
                (Box::new(front), handles)
            }
            Backend::Virtio => {
                let (front, handles) =
                    VirtioNet::new_multiqueue(xs, name, mac, discipline, queues);
                (Box::new(front), handles)
            }
        }
    }

    /// Creates a block device of `sectors` sectors over this backend.
    pub fn blk(
        self,
        xs: Xenstore,
        name: impl Into<String>,
        sectors: u64,
    ) -> (Box<dyn BlkDriver>, BlkHandle) {
        match self {
            Backend::XenRing => {
                let (front, handle) = Blkfront::new(xs, name, sectors);
                (Box::new(front), handle)
            }
            Backend::Virtio => {
                let (front, handle) = VirtioBlk::new(xs, name, sectors);
                (Box::new(front), handle)
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A network device frontend, independent of ring ABI. Supertrait
/// [`DeviceService`] lets the trait object plug straight into
/// [`UnikernelGuest::add_device`](mirage_runtime::UnikernelGuest::add_device)
/// by upcast.
pub trait NetDriver: DeviceService {
    /// Which transport this device speaks.
    fn backend(&self) -> Backend;
    /// The interface MAC address.
    fn mac(&self) -> [u8; 6];
    /// Steers the device's event channel(s) — and service charging — to
    /// vCPU `v` (the affinity base for multi-queue devices).
    fn set_service_vcpu(&mut self, v: usize);
}

impl NetDriver for Netfront {
    fn backend(&self) -> Backend {
        Backend::XenRing
    }
    fn mac(&self) -> [u8; 6] {
        Netfront::mac(self)
    }
    fn set_service_vcpu(&mut self, v: usize) {
        Netfront::set_service_vcpu(self, v)
    }
}

impl NetDriver for VirtioNet {
    fn backend(&self) -> Backend {
        Backend::Virtio
    }
    fn mac(&self) -> [u8; 6] {
        VirtioNet::mac(self)
    }
    fn set_service_vcpu(&mut self, v: usize) {
        VirtioNet::set_service_vcpu(self, v)
    }
}

/// A block device frontend, independent of ring ABI.
pub trait BlkDriver: DeviceService {
    /// Which transport this device speaks.
    fn backend(&self) -> Backend;
}

impl BlkDriver for Blkfront {
    fn backend(&self) -> Backend {
        Backend::XenRing
    }
}

impl BlkDriver for VirtioBlk {
    fn backend(&self) -> Backend {
        Backend::Virtio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_round_trips() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Backend::parse("XEN"), Some(Backend::XenRing));
        assert_eq!(Backend::parse("gvisor"), None);
        assert_eq!(Backend::default(), Backend::XenRing);
    }

    #[test]
    fn factory_produces_the_requested_backend() {
        let xs = Xenstore::new();
        for b in Backend::ALL {
            let (net, handle) =
                b.net(xs.clone(), format!("nic-{b}"), [2, 0, 0, 0, 0, 1], CopyDiscipline::ZeroCopy);
            assert_eq!(net.backend(), b);
            assert_eq!(NetDriver::mac(&*net), handle.mac);
            let (blk, bh) = b.blk(xs.clone(), format!("vda-{b}"), 1024);
            assert_eq!(blk.backend(), b);
            assert_eq!(bh.sectors, 1024);
        }
    }
}
