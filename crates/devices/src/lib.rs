//! Type-safe Xen device drivers for mirage-rs (paper §3.4).
//!
//! "Mirage drivers interface to the device abstraction provided by Xen.
//! Xen devices consist of a frontend driver in the guest VM, and a backend
//! driver that multiplexes frontend requests, typically to a real physical
//! device." This crate provides both halves over the simulated substrate:
//!
//! * [`xenstore::Xenstore`] — the out-of-band store the halves handshake
//!   through (grant refs, event ports, connection states), with watches.
//! * [`netfront::Netfront`] / [`netback::DriverDomain`] — Ethernet: grant
//!   based zero-copy rings on the guest side, a learning switch plus
//!   bandwidth model in the driver domain.
//! * [`blk::Blkfront`] — block storage over the same ring abstraction
//!   ("Mirage block devices share the same Ring abstraction as network
//!   devices", §3.5.2), serviced against a [`blk::SimulatedDisk`] with a
//!   PCIe-SSD timing profile (Figure 9).
//! * [`vchan::VchanEndpoint`] — the fast shared-memory inter-VM byte
//!   transport (§3.5.1).
//!
//! The [`netfront::CopyDiscipline`] knob is how the conventional-OS
//! baseline pays its syscall + user/kernel copy on the identical data path.

pub mod blk;
pub mod driver;
pub mod netback;
pub mod netem;
pub mod netfront;
pub mod rss;
pub mod vchan;
pub mod virtio;
pub mod xenstore;

pub use blk::{BlkCompletion, BlkHandle, BlkOp, BlkRequest, Blkfront, DiskProfile, SimulatedDisk};
pub use driver::{Backend, BlkDriver, NetDriver};
pub use netback::{DriverDomain, DriverStats, NetProfile, Tap};
pub use netem::{DiskFaultPlan, Netem, NetemConfig, NetemStats};
pub use netfront::{CopyDiscipline, NetHandle, Netfront};
pub use vchan::{VchanEndpoint, VchanHandle};
pub use virtio::{VirtioBlk, VirtioNet};
pub use xenstore::Xenstore;

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_cstruct::PktBuf;
    use mirage_hypervisor::{Dur, Hypervisor, RunOutcome, Time};
    use mirage_runtime::UnikernelGuest;

    fn eth_frame(dst: [u8; 6], src: [u8; 6], payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::with_capacity(14 + payload.len());
        f.extend_from_slice(&dst);
        f.extend_from_slice(&src);
        f.extend_from_slice(&[0x08, 0x00]);
        f.extend_from_slice(payload);
        f
    }

    const MAC_A: [u8; 6] = [0x02, 0, 0, 0, 0, 0xAA];
    const MAC_B: [u8; 6] = [0x02, 0, 0, 0, 0, 0xBB];

    #[test]
    fn two_guests_exchange_frames_through_the_switch() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        // Guest B: echo every frame back to its sender, then exit after one.
        let (front_b, mut nh_b) = Netfront::new(xs.clone(), "b", MAC_B, CopyDiscipline::ZeroCopy);
        let mut guest_b = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                let frame = nh_b.rx.recv().await.expect("frame arrives");
                assert_eq!(&frame[0..6], &MAC_B, "addressed to us");
                let payload = frame[14..].to_vec();
                let reply = eth_frame(MAC_A, MAC_B, &payload);
                nh_b.tx.send(PktBuf::from_vec(reply)).unwrap();
                // Give the driver a chance to flush before exiting.
                payload.len() as i64
            })
        });
        guest_b.add_device(Box::new(front_b));
        hv.create_domain("guest-b", 64, Box::new(guest_b));

        // Guest A: send to B (first frame floods; B's reply teaches the
        // switch), await echo.
        let (front_a, mut nh_a) = Netfront::new(xs.clone(), "a", MAC_A, CopyDiscipline::ZeroCopy);
        let mut guest_a = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                nh_a.tx.send(PktBuf::from_vec(eth_frame(MAC_B, MAC_A, b"ping!"))).unwrap();
                let echo = nh_a.rx.recv().await.expect("echo arrives");
                assert_eq!(&echo[14..], b"ping!");
                0
            })
        });
        guest_a.add_device(Box::new(front_a));
        let dom_a = hv.create_domain("guest-a", 64, Box::new(guest_a));

        let outcome = hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(outcome, RunOutcome::Idle, "dom0 keeps listening");
        assert_eq!(hv.exit_code(dom_a), Some(0), "A saw its echo");
    }

    #[test]
    fn tap_can_talk_to_a_guest() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        let tap = Tap::new([0x02, 0, 0, 0, 0, 0x01]);
        let mut dom0 = DriverDomain::new(xs.clone());
        dom0.add_tap(tap.clone());
        let d0 = hv.create_domain("dom0", 512, Box::new(dom0));

        let (front, mut nh) = Netfront::new(xs.clone(), "g", MAC_A, CopyDiscipline::ZeroCopy);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                let frame = nh.rx.recv().await.expect("frame from tap");
                let mut reply = eth_frame(
                    frame[6..12].try_into().unwrap(),
                    MAC_A,
                    b"hello tap",
                );
                reply[12..14].copy_from_slice(&frame[12..14]);
                nh.tx.send(PktBuf::from_vec(reply)).unwrap();
                0
            })
        });
        guest.add_device(Box::new(front));
        let gdom = hv.create_domain("guest", 64, Box::new(guest));

        // Let everything connect.
        hv.run_until(Time::ZERO + Dur::millis(100));
        tap.inject(eth_frame(MAC_A, tap.mac(), b"probe"));
        hv.wake_external(d0);
        hv.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(hv.exit_code(gdom), Some(0));
        let frames = tap.harvest();
        assert_eq!(frames.len(), 1);
        assert_eq!(&frames[0][14..], b"hello tap");
    }

    #[test]
    fn blk_write_then_read_round_trips_with_latency() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        let (front, bh) = Blkfront::new(xs.clone(), "vda", 1 << 20);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            let mut bh = bh;
            rt.clone().spawn(async move {
                let payload = vec![0x5A; 4096];
                bh.submit
                    .send(BlkRequest {
                        id: 1,
                        op: BlkOp::Write,
                        sector: 64,
                        count: 8,
                        data: Some(payload.clone()),
                    })
                    .unwrap();
                let done = bh.complete.recv().await.unwrap();
                assert!(done.ok);
                bh.submit
                    .send(BlkRequest {
                        id: 2,
                        op: BlkOp::Read,
                        sector: 64,
                        count: 8,
                        data: None,
                    })
                    .unwrap();
                let read = bh.complete.recv().await.unwrap();
                assert!(read.ok);
                assert_eq!(read.data.as_deref(), Some(payload.as_slice()));
                0
            })
        });
        guest.add_device(Box::new(front));
        let gdom = hv.create_domain("guest", 64, Box::new(guest));
        hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(hv.exit_code(gdom), Some(0));
        // Two requests through an 18 us device: virtual time reflects it.
        assert!(hv.now() >= Time::ZERO + Dur::micros(36));
    }

    #[test]
    fn blk_out_of_range_request_fails_cleanly() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));
        let (front, bh) = Blkfront::new(xs.clone(), "vda", 100);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            let mut bh = bh;
            rt.clone().spawn(async move {
                bh.submit
                    .send(BlkRequest {
                        id: 9,
                        op: BlkOp::Read,
                        sector: 99,
                        count: 8,
                        data: None,
                    })
                    .unwrap();
                let done = bh.complete.recv().await.unwrap();
                assert!(!done.ok, "read past end must fail");
                0
            })
        });
        guest.add_device(Box::new(front));
        let gdom = hv.create_domain("guest", 64, Box::new(guest));
        hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(hv.exit_code(gdom), Some(0));
    }

    #[test]
    fn virtio_guests_exchange_frames_through_the_switch() {
        // Same ping/echo workload as the Xen-ring test above, but both
        // NICs ride split virtqueues — the switch serves either ABI.
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        let (front_b, mut nh_b) =
            Backend::Virtio.net(xs.clone(), "b", MAC_B, CopyDiscipline::ZeroCopy);
        let mut guest_b = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                let frame = nh_b.rx.recv().await.expect("frame arrives");
                assert_eq!(&frame[0..6], &MAC_B, "addressed to us");
                let payload = frame[14..].to_vec();
                nh_b.tx.send(PktBuf::from_vec(eth_frame(MAC_A, MAC_B, &payload))).unwrap();
                payload.len() as i64
            })
        });
        guest_b.add_device(front_b);
        hv.create_domain("guest-b", 64, Box::new(guest_b));

        let (front_a, mut nh_a) =
            Backend::Virtio.net(xs.clone(), "a", MAC_A, CopyDiscipline::ZeroCopy);
        let mut guest_a = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                nh_a.tx.send(PktBuf::from_vec(eth_frame(MAC_B, MAC_A, b"ping!"))).unwrap();
                let echo = nh_a.rx.recv().await.expect("echo arrives");
                assert_eq!(&echo[14..], b"ping!");
                0
            })
        });
        guest_a.add_device(front_a);
        let dom_a = hv.create_domain("guest-a", 64, Box::new(guest_a));

        let outcome = hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(outcome, RunOutcome::Idle, "dom0 keeps listening");
        assert_eq!(hv.exit_code(dom_a), Some(0), "A saw its echo");
    }

    #[test]
    fn mixed_backends_interoperate_on_one_switch() {
        // A Xen-ring guest and a virtio guest share the learning switch:
        // the MAC table addresses ports of either family.
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        let (front_b, mut nh_b) =
            Backend::Virtio.net(xs.clone(), "b", MAC_B, CopyDiscipline::ZeroCopy);
        let mut guest_b = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                let frame = nh_b.rx.recv().await.expect("frame arrives");
                let payload = frame[14..].to_vec();
                nh_b.tx.send(PktBuf::from_vec(eth_frame(MAC_A, MAC_B, &payload))).unwrap();
                0
            })
        });
        guest_b.add_device(front_b);
        hv.create_domain("guest-b", 64, Box::new(guest_b));

        let (front_a, mut nh_a) =
            Backend::XenRing.net(xs.clone(), "a", MAC_A, CopyDiscipline::ZeroCopy);
        let mut guest_a = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                nh_a.tx.send(PktBuf::from_vec(eth_frame(MAC_B, MAC_A, b"cross-abi"))).unwrap();
                let echo = nh_a.rx.recv().await.expect("echo arrives");
                assert_eq!(&echo[14..], b"cross-abi");
                0
            })
        });
        guest_a.add_device(front_a);
        let dom_a = hv.create_domain("guest-a", 64, Box::new(guest_a));

        hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(hv.exit_code(dom_a), Some(0), "echo crossed the ABI boundary");
    }

    #[test]
    fn virtio_blk_write_then_read_round_trips() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        let (front, bh) = Backend::Virtio.blk(xs.clone(), "vda", 1 << 20);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            let mut bh = bh;
            rt.clone().spawn(async move {
                let payload = vec![0xC3; 4096];
                bh.submit
                    .send(BlkRequest {
                        id: 1,
                        op: BlkOp::Write,
                        sector: 64,
                        count: 8,
                        data: Some(payload.clone()),
                    })
                    .unwrap();
                let done = bh.complete.recv().await.unwrap();
                assert!(done.ok);
                bh.submit
                    .send(BlkRequest { id: 2, op: BlkOp::Read, sector: 64, count: 8, data: None })
                    .unwrap();
                let read = bh.complete.recv().await.unwrap();
                assert!(read.ok);
                assert_eq!(read.data.as_deref(), Some(payload.as_slice()));
                // Out-of-range read fails with a clean IOERR status.
                bh.submit
                    .send(BlkRequest {
                        id: 3,
                        op: BlkOp::Read,
                        sector: (1 << 20) - 1,
                        count: 8,
                        data: None,
                    })
                    .unwrap();
                let bad = bh.complete.recv().await.unwrap();
                assert!(!bad.ok, "read past end must fail");
                0
            })
        });
        guest.add_device(front);
        let gdom = hv.create_domain("guest", 64, Box::new(guest));
        hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(hv.exit_code(gdom), Some(0));
        assert!(hv.now() >= Time::ZERO + Dur::micros(36), "disk latency charged");
    }

    #[test]
    fn vchan_streams_bytes_between_guests() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();

        let (server_ep, mut sh) = VchanEndpoint::server(xs.clone(), "chat");
        let mut server = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                let mut got = Vec::new();
                while got.len() < 11 {
                    got.extend(sh.rx.recv().await.expect("bytes"));
                }
                assert_eq!(&got, b"hello vchan");
                sh.tx.send(b"ack".to_vec()).unwrap();
                0
            })
        });
        server.add_device(Box::new(server_ep));
        let sdom = hv.create_domain("server", 64, Box::new(server));

        let (client_ep, mut ch) = VchanEndpoint::client(xs.clone(), "chat");
        let mut client = UnikernelGuest::new(move |_env, rt| {
            rt.clone().spawn(async move {
                ch.tx.send(b"hello vchan".to_vec()).unwrap();
                let mut got = Vec::new();
                while got.len() < 3 {
                    got.extend(ch.rx.recv().await.expect("ack"));
                }
                assert_eq!(&got, b"ack");
                0
            })
        });
        client.add_device(Box::new(client_ep));
        let cdom = hv.create_domain("client", 64, Box::new(client));

        hv.run_until(Time::ZERO + Dur::secs(5));
        assert_eq!(hv.exit_code(sdom), Some(0));
        assert_eq!(hv.exit_code(cdom), Some(0));
    }

    #[test]
    fn wire_time_is_charged_for_switched_frames() {
        // A 1 Gb/s link: 1500 bytes take 12 us of wire time in dom0.
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));
        let (front, nh) = Netfront::new(xs.clone(), "g", MAC_A, CopyDiscipline::ZeroCopy);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                for _ in 0..100 {
                    nh.tx.send(PktBuf::from_vec(eth_frame(MAC_B, MAC_A, &[0u8; 1486]))).unwrap();
                }
                // Stay alive until the driver drains the backlog.
                while nh.stats().tx_frames < 100 {
                    rt2.sleep(Dur::micros(50)).await;
                }
                0
            })
        });
        guest.add_device(Box::new(front));
        hv.create_domain("guest", 64, Box::new(guest));
        hv.run_until(Time::ZERO + Dur::secs(5));
        // 100 x 1500B at 1 Gb/s = 1.2 ms of wire time minimum.
        assert!(hv.now() >= Time::ZERO + Dur::micros(1200));
    }
}
