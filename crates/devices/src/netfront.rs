//! Netfront — the guest-side Ethernet driver (paper §3.4).
//!
//! "Xen devices consist of a frontend driver in the guest VM, and a backend
//! driver that multiplexes frontend requests." The frontend owns two
//! descriptor rings (transmit and receive), a pool of granted I/O pages,
//! and an event channel. Descriptors never carry packet data — only grant
//! references — so the data path is the zero-copy page-passing scheme of
//! §3.4.1.
//!
//! The [`CopyDiscipline`] knob prices the two architectures the paper
//! compares: a unikernel writes wire bytes straight into the granted I/O
//! page ([`CopyDiscipline::ZeroCopy`]); a conventional OS pays a syscall
//! plus a user↔kernel copy on every packet
//! ([`CopyDiscipline::UserKernelCopy`]).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_cstruct::PktBuf;
use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::{GrantRef, SharedPage};
use mirage_hypervisor::{DomainEnv, DomainId};
use mirage_ring::FrontRing;
use mirage_runtime::channel::{self, Receiver, Sender};
use mirage_runtime::{DeviceService, Runtime};

use crate::xenstore::Xenstore;

/// Receive buffers posted to the backend.
pub const RX_BUFFERS: usize = 24;
/// Transmit pages in the recycled pool.
pub const TX_BUFFERS: usize = 24;
/// Frames queued towards the ring before tail-drop.
pub const TX_BACKLOG_CAP: usize = 256;
/// Maximum frame size (one page; jumbo frames are not modelled).
pub const MAX_FRAME: usize = 4096;

/// How packet payloads cross the guest/driver boundary — the architectural
/// difference the paper's network benchmarks measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDiscipline {
    /// Mirage: the stack serialises directly into the granted I/O page;
    /// no further copies, no syscalls.
    ZeroCopy,
    /// Conventional OS: each packet pays a syscall trap plus a
    /// user↔kernel copy before reaching the granted page.
    UserKernelCopy,
}

/// Per-interface counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetifStats {
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames dropped at the transmit backlog.
    pub tx_drops: u64,
    /// Frontend→backend event-channel notifications on the data plane.
    /// Both ring ABIs batch: one service pass rings at most once per
    /// queue, and only when the backend's announced event mark asks for
    /// it — so this grows O(bursts), not O(frames).
    pub doorbells: u64,
}

/// The stack-facing half of a network interface: send and receive whole
/// Ethernet frames.
pub struct NetHandle {
    /// Interface MAC address.
    pub mac: [u8; 6],
    /// Frame transmit queue (stack → driver). Frames travel by reference:
    /// the driver writes them into the granted page without cloning.
    pub tx: Sender<PktBuf>,
    /// Frame receive queue (driver → stack). Each frame is an owned view
    /// the stack slices further without copying.
    pub rx: Receiver<PktBuf>,
    stats: Arc<Mutex<NetifStats>>,
}

impl std::fmt::Debug for NetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetHandle({:02x?})", self.mac)
    }
}

impl NetHandle {
    /// Assembles a handle around a driver's queue endpoints (shared by
    /// the Xen and virtio frontends).
    pub(crate) fn new(
        mac: [u8; 6],
        tx: Sender<PktBuf>,
        rx: Receiver<PktBuf>,
        stats: Arc<Mutex<NetifStats>>,
    ) -> NetHandle {
        NetHandle { mac, tx, rx, stats }
    }

    /// Current interface counters.
    pub fn stats(&self) -> NetifStats {
        *self.stats.lock()
    }
}

mod desc {
    //! Descriptor encodings (they ride in ring slots, never payload).

    pub fn tx_req(gref: u32, len: u16) -> Vec<u8> {
        let mut d = Vec::with_capacity(6);
        d.extend_from_slice(&gref.to_le_bytes());
        d.extend_from_slice(&len.to_le_bytes());
        d
    }

    pub fn parse_tx_req(d: &[u8]) -> Option<(u32, u16)> {
        if d.len() != 6 {
            return None;
        }
        Some((
            u32::from_le_bytes(d[0..4].try_into().ok()?),
            u16::from_le_bytes(d[4..6].try_into().ok()?),
        ))
    }

    pub fn gref_only(gref: u32) -> Vec<u8> {
        gref.to_le_bytes().to_vec()
    }

    pub fn parse_gref(d: &[u8]) -> Option<u32> {
        Some(u32::from_le_bytes(d.try_into().ok()?))
    }

    pub fn rx_rsp(gref: u32, len: u16) -> Vec<u8> {
        tx_req(gref, len)
    }

    pub fn parse_rx_rsp(d: &[u8]) -> Option<(u32, u16)> {
        parse_tx_req(d)
    }
}

pub(crate) use desc::*;

/// Prices moving `len` payload bytes from the stack into the granted I/O
/// page, per the interface's [`CopyDiscipline`] — shared by both ring
/// ABIs, so the architectural comparison is independent of the transport.
pub(crate) fn charge_tx(discipline: CopyDiscipline, env: &mut DomainEnv<'_>, len: usize) {
    match discipline {
        CopyDiscipline::ZeroCopy => {
            // The single serialise-into-I/O-page write.
            let c = env.costs().copy(len);
            env.consume(c);
        }
        CopyDiscipline::UserKernelCopy => {
            let c = env.costs().syscall + env.costs().copy(len) + env.costs().copy(len);
            env.consume(c);
        }
    }
}

/// Prices receiving `len` payload bytes, per the [`CopyDiscipline`].
pub(crate) fn charge_rx(discipline: CopyDiscipline, env: &mut DomainEnv<'_>, len: usize) {
    match discipline {
        CopyDiscipline::ZeroCopy => {
            // Page is mapped and sliced; no copy ("received pages are
            // passed directly to the application", §3.4.1).
        }
        CopyDiscipline::UserKernelCopy => {
            let c = env.costs().syscall + env.costs().copy(len);
            env.consume(c);
        }
    }
}

enum FrontState {
    /// Advertise rings + domid in xenstore.
    Init,
    /// Waiting for the backend to publish an event-channel port.
    WaitPort,
    /// Data plane running.
    Connected,
}

/// The netfront device driver; plugs into a
/// [`UnikernelGuest`](mirage_runtime::UnikernelGuest) as a
/// [`DeviceService`].
///
/// A multi-queue instance ([`Netfront::new_multiqueue`]) keeps one ring
/// pair and one event channel but fans received frames out to per-queue
/// ingress channels by RSS flow hash ([`crate::rss`]), so each stack
/// worker — and therefore each vCPU — sees only its own flows. Cross-core
/// handoff moves `PktBuf` views (refcount bumps), never bytes.
pub struct Netfront {
    xs: Xenstore,
    name: String,
    mac: [u8; 6],
    discipline: CopyDiscipline,
    state: FrontState,
    registered_watch: bool,
    tx_ring: Option<FrontRing>,
    rx_ring: Option<FrontRing>,
    port: Option<Port>,
    backend: Option<DomainId>,
    /// Recycled transmit pages: (gref, page).
    tx_free: Vec<(GrantRef, SharedPage)>,
    /// Pages travelling through the backend, keyed by gref.
    tx_inflight: HashMap<u32, (GrantRef, SharedPage)>,
    /// Posted receive buffers, keyed by gref.
    rx_bufs: HashMap<u32, SharedPage>,
    /// Per-queue TX intake (stack workers -> driver), drained in fixed
    /// queue order each service pass.
    from_stack: Vec<Receiver<PktBuf>>,
    /// Per-queue RX fan-out (driver -> stack workers), indexed by
    /// [`crate::rss::rx_queue`] of the incoming frame.
    to_stack: Vec<Sender<PktBuf>>,
    /// Merged TX backlog; each frame remembers its source queue so its
    /// serialise-into-I/O-page charge lands on the owning vCPU's lane.
    tx_backlog: VecDeque<(usize, PktBuf)>,
    stats: Arc<Mutex<NetifStats>>,
    /// vCPU this device's event channel is steered to
    /// (`EVTCHNOP_bind_vcpu`); the run-loop charges service work there.
    service_vcpu: usize,
}

impl Netfront {
    /// Creates the driver and its stack-facing handle.
    ///
    /// `name` keys the xenstore handshake and must be unique per interface.
    pub fn new(
        xs: Xenstore,
        name: impl Into<String>,
        mac: [u8; 6],
        discipline: CopyDiscipline,
    ) -> (Netfront, NetHandle) {
        let (front, mut handles) = Netfront::new_multiqueue(xs, name, mac, discipline, 1);
        (front, handles.remove(0))
    }

    /// Creates a multi-queue driver: one stack-facing handle per RX/TX
    /// queue. Received IPv4 TCP frames are classified by Toeplitz flow
    /// hash into `shard % queues`; everything else rides queue 0. Pass
    /// each handle to the stack worker that owns the matching shard
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new_multiqueue(
        xs: Xenstore,
        name: impl Into<String>,
        mac: [u8; 6],
        discipline: CopyDiscipline,
        queues: usize,
    ) -> (Netfront, Vec<NetHandle>) {
        assert!(queues > 0, "a NIC needs at least one queue");
        let stats = Arc::new(Mutex::new(NetifStats::default()));
        let mut from_stack = Vec::with_capacity(queues);
        let mut to_stack = Vec::with_capacity(queues);
        let mut handles = Vec::with_capacity(queues);
        for _ in 0..queues {
            let (tx_in, tx_out) = channel::channel();
            let (rx_in, rx_out) = channel::channel();
            from_stack.push(tx_out);
            to_stack.push(rx_in);
            handles.push(NetHandle {
                mac,
                tx: tx_in,
                rx: rx_out,
                stats: Arc::clone(&stats),
            });
        }
        let front = Netfront {
            xs,
            name: name.into(),
            mac,
            discipline,
            state: FrontState::Init,
            registered_watch: false,
            tx_ring: None,
            rx_ring: None,
            port: None,
            backend: None,
            tx_free: Vec::new(),
            tx_inflight: HashMap::new(),
            rx_bufs: HashMap::new(),
            from_stack,
            to_stack,
            tx_backlog: VecDeque::new(),
            stats,
            service_vcpu: 0,
        };
        (front, handles)
    }

    /// Steers this device's event channel — and with it the run-loop's
    /// service charging — to vCPU `v` once connected.
    pub fn set_service_vcpu(&mut self, v: usize) {
        self.service_vcpu = v;
    }

    /// The interface MAC address.
    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    fn base(&self) -> String {
        format!("device/net/{}", self.name)
    }

    fn step_init(&mut self, env: &mut DomainEnv<'_>) -> bool {
        if !self.registered_watch {
            self.xs.register_watcher(env.domid());
            self.registered_watch = true;
        }
        let Some(backend) = self
            .xs
            .read(env, "backend-domid")
            .and_then(|s| s.parse().ok())
            .map(DomainId)
        else {
            return false; // driver domain not up yet; its write will wake us
        };
        self.backend = Some(backend);
        let base = self.base();
        let tx_page = SharedPage::new();
        let rx_page = SharedPage::new();
        let tx_gref = env.grant(backend, tx_page.clone(), true);
        let rx_gref = env.grant(backend, rx_page.clone(), true);
        self.tx_ring = Some(FrontRing::attach(tx_page));
        self.rx_ring = Some(FrontRing::attach(rx_page));
        let domid = env.domid().0.to_string();
        self.xs.write(env, &format!("{base}/frontend-domid"), &domid);
        self.xs
            .write(env, &format!("{base}/tx-ring"), &tx_gref.0.to_string());
        self.xs
            .write(env, &format!("{base}/rx-ring"), &rx_gref.0.to_string());
        self.xs.write(
            env,
            &format!("{base}/mac"),
            &self.mac.map(|b| format!("{b:02x}")).join(":"),
        );
        self.xs.write(env, &format!("{base}/state"), "initialising");
        self.state = FrontState::WaitPort;
        true
    }

    fn step_wait_port(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let base = self.base();
        let Some(port) = self
            .xs
            .read(env, &format!("{base}/event-port"))
            .and_then(|s| s.parse().ok())
            .map(Port)
        else {
            return false;
        };
        let backend = self.backend.expect("set in Init");
        let local = env.evtchn_bind(backend, port).expect("backend allocated");
        self.port = Some(local);

        // Post receive buffers.
        let rx_ring = self.rx_ring.as_mut().expect("attached in Init");
        for _ in 0..RX_BUFFERS {
            let page = SharedPage::new();
            let gref = env.grant(backend, page.clone(), true);
            self.rx_bufs.insert(gref.0, page);
            let _ = rx_ring.push_request(&gref_only(gref.0));
        }
        // Pre-grant the transmit pool (read-only: the backend only reads).
        for _ in 0..TX_BUFFERS {
            let page = SharedPage::new();
            let gref = env.grant(backend, page.clone(), false);
            self.tx_free.push((gref, page));
        }
        if self.service_vcpu != 0 {
            let _ = env.evtchn_set_vcpu(local, self.service_vcpu);
        }
        self.xs.write(env, &format!("{base}/state"), "connected");
        env.evtchn_notify(local).expect("bound");
        env.observe(&format!("net-connected:{}", self.name));
        self.state = FrontState::Connected;
        true
    }

    fn step_connected(&mut self, env: &mut DomainEnv<'_>, _rt: &Runtime) -> bool {
        let mut progressed = false;
        let port = self.port.expect("connected");
        let _ = env.evtchn_consume(port);

        // Reclaim completed transmit pages.
        if let Some(tx_ring) = self.tx_ring.as_mut() {
            while let Some(rsp) = tx_ring.take_response() {
                if let Some(gref) = parse_gref(&rsp) {
                    if let Some(entry) = self.tx_inflight.remove(&gref) {
                        self.tx_free.push(entry);
                        progressed = true;
                    }
                }
            }
        }

        // Deliver received frames and repost buffers. The fan-out moves
        // only an owned `PktBuf` (an `Arc` refcount once the stack slices
        // it), never bytes, and each frame's RX cost is charged on the
        // lane of the vCPU owning its queue — the per-core ingress-ring
        // model: classification on the service lane, payload work on the
        // owning core.
        let entry_lane = env.current_vcpu();
        let mut notify_rx = false;
        if let Some(rx_ring) = self.rx_ring.as_mut() {
            while let Some(rsp) = rx_ring.take_response() {
                let Some((gref, len)) = parse_rx_rsp(&rsp) else {
                    continue;
                };
                if let Some(page) = self.rx_bufs.get(&gref) {
                    // Reading the granted page models the DMA transfer, so
                    // it is priced by charge_rx, not counted as a software
                    // copy; from here the frame travels by reference.
                    let mut frame = vec![0u8; len as usize];
                    page.read(|b| frame.copy_from_slice(&b[..len as usize]));
                    let frame = PktBuf::from_vec(frame);
                    let q = crate::rss::rx_queue(&frame, self.to_stack.len());
                    env.on_vcpu(q % env.vcpus());
                    charge_rx(self.discipline, env, len as usize);
                    env.on_vcpu(entry_lane);
                    {
                        let mut st = self.stats.lock();
                        st.rx_frames += 1;
                        st.rx_bytes += len as u64;
                    }
                    let _ = self.to_stack[q].send(frame);
                    // Repost the same buffer.
                    if let Ok(n) = rx_ring.push_request(&gref_only(gref)) {
                        notify_rx |= n;
                    }
                    progressed = true;
                }
            }
        }

        // Transmit queued frames, draining the per-queue intakes in
        // fixed order (queue id, then FIFO) for a deterministic merge.
        // The cap scales with the queue count: each stack worker gets its
        // own burst quota, so eight cores flushing at once don't tail-drop
        // each other's segments.
        let backlog_cap = TX_BACKLOG_CAP * self.from_stack.len();
        for (q, intake) in self.from_stack.iter_mut().enumerate() {
            while let Some(frame) = intake.try_recv() {
                self.tx_backlog.push_back((q, frame));
                if self.tx_backlog.len() > backlog_cap {
                    self.tx_backlog.pop_front();
                    self.stats.lock().tx_drops += 1;
                }
            }
        }
        let mut notify_tx = false;
        while let Some((_, frame)) = self.tx_backlog.front() {
            if frame.len() > MAX_FRAME {
                self.tx_backlog.pop_front();
                self.stats.lock().tx_drops += 1;
                continue;
            }
            let Some((gref, page)) = self.tx_free.pop() else {
                break;
            };
            let tx_ring = self.tx_ring.as_mut().expect("connected");
            if tx_ring.free_slots() == 0 {
                self.tx_free.push((gref, page));
                break;
            }
            let (src_q, frame) = self.tx_backlog.pop_front().expect("peeked");
            page.write(|b| b[..frame.len()].copy_from_slice(&frame));
            // Serialisation into the I/O page is the sending core's work.
            env.on_vcpu(src_q % env.vcpus());
            charge_tx(self.discipline, env, frame.len());
            env.on_vcpu(entry_lane);
            match tx_ring.push_request(&tx_req(gref.0, frame.len() as u16)) {
                Ok(n) => {
                    notify_tx |= n;
                    {
                        let mut st = self.stats.lock();
                        st.tx_frames += 1;
                        st.tx_bytes += frame.len() as u64;
                    }
                    self.tx_inflight.insert(gref.0, (gref, page));
                    progressed = true;
                }
                Err(_) => {
                    self.tx_free.push((gref, page));
                    break;
                }
            }
        }
        if notify_tx || notify_rx {
            let _ = env.evtchn_notify(port);
            self.stats.lock().doorbells += 1;
        }
        // Arm notifications before blocking; if responses raced in, go
        // around again instead of sleeping (the §3.5.1 footnote protocol).
        if let Some(tx_ring) = self.tx_ring.as_mut() {
            progressed |= tx_ring.enable_response_notifications();
        }
        if let Some(rx_ring) = self.rx_ring.as_mut() {
            progressed |= rx_ring.enable_response_notifications();
        }
        progressed
    }
}

impl DeviceService for Netfront {
    fn service(&mut self, env: &mut DomainEnv<'_>, rt: &Runtime) -> bool {
        match self.state {
            FrontState::Init => self.step_init(env),
            FrontState::WaitPort => {
                let p = self.step_wait_port(env);
                if matches!(self.state, FrontState::Connected) {
                    // Run the data plane immediately after connecting.
                    self.step_connected(env, rt) || p
                } else {
                    p
                }
            }
            FrontState::Connected => self.step_connected(env, rt),
        }
    }

    fn watch_ports(&self) -> Vec<Port> {
        self.port.into_iter().collect()
    }
}
