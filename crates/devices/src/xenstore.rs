//! A minimal xenstore: the out-of-band key/value store through which Xen
//! frontends and backends negotiate rings, grant references and event
//! channels before any device traffic can flow.
//!
//! The paper's drivers "interoperate with unmodified Xen hosts" (§3.4),
//! which implies speaking this handshake: the frontend advertises its ring
//! grants and domain id, the backend responds with an event-channel port,
//! and both sides flip through connection states. Watches are modelled with
//! the hypervisor's virq mechanism so a write wakes every registered
//! watcher — no polling.

use std::collections::HashMap;
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_hypervisor::{DomainEnv, DomainId};

#[derive(Default)]
struct Store {
    map: HashMap<String, String>,
    watchers: Vec<DomainId>,
    version: u64,
}

/// Shared handle to the store. Clones see the same tree.
#[derive(Clone, Default)]
pub struct Xenstore {
    inner: Arc<Mutex<Store>>,
}

impl std::fmt::Debug for Xenstore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        write!(f, "Xenstore({} keys, v{})", st.map.len(), st.version)
    }
}

impl Xenstore {
    /// An empty store.
    pub fn new() -> Xenstore {
        Xenstore::default()
    }

    /// Registers `dom` to receive a virq on every subsequent write.
    pub fn register_watcher(&self, dom: DomainId) {
        let mut st = self.inner.lock();
        if !st.watchers.contains(&dom) {
            st.watchers.push(dom);
        }
    }

    /// Writes `key = value` from guest context, waking all watchers.
    pub fn write(&self, env: &mut DomainEnv<'_>, key: &str, value: &str) {
        let watchers = {
            let mut st = self.inner.lock();
            st.map.insert(key.to_owned(), value.to_owned());
            st.version += 1;
            st.watchers.clone()
        };
        env.consume(env.costs().hypercall); // the store ring round-trip
        for w in watchers {
            if w != env.domid() {
                env.virq(w);
            }
        }
    }

    /// Reads a key from guest context.
    pub fn read(&self, env: &mut DomainEnv<'_>, key: &str) -> Option<String> {
        env.consume(env.costs().hypercall);
        self.inner.lock().map.get(key).cloned()
    }

    /// Host-side read (experiment harnesses; no cost accounting).
    pub fn read_host(&self, key: &str) -> Option<String> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Host-side write (no watch events — use for pre-seeding only).
    pub fn write_host(&self, key: &str, value: &str) {
        let mut st = self.inner.lock();
        st.map.insert(key.to_owned(), value.to_owned());
        st.version += 1;
    }

    /// All keys sharing `prefix`, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let st = self.inner.lock();
        let mut keys: Vec<String> = st
            .map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Monotonic write counter (change detection).
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_hypervisor::{Guest, Hypervisor, Step, Wake};

    #[test]
    fn host_read_write_round_trip() {
        let xs = Xenstore::new();
        xs.write_host("a/b", "1");
        assert_eq!(xs.read_host("a/b").as_deref(), Some("1"));
        assert_eq!(xs.read_host("a/c"), None);
    }

    #[test]
    fn prefix_listing_is_sorted() {
        let xs = Xenstore::new();
        xs.write_host("net/2/x", "");
        xs.write_host("net/1/x", "");
        xs.write_host("blk/1/x", "");
        assert_eq!(
            xs.keys_with_prefix("net/"),
            vec!["net/1/x".to_owned(), "net/2/x".to_owned()]
        );
    }

    #[test]
    fn guest_write_wakes_watcher() {
        // Watcher blocks forever; writer updates the store; the watch virq
        // must wake the watcher, which then exits.
        struct Watcher {
            xs: Xenstore,
            woken: bool,
        }
        impl Guest for Watcher {
            fn step(&mut self, env: &mut DomainEnv<'_>) -> Step {
                if self.woken || self.xs.read(env, "signal").is_some() {
                    return Step::Exit(1);
                }
                self.woken = false;
                Step::Yield(Wake::never())
            }
        }
        struct Writer {
            xs: Xenstore,
        }
        impl Guest for Writer {
            fn step(&mut self, env: &mut DomainEnv<'_>) -> Step {
                self.xs.write(env, "signal", "go");
                Step::Exit(0)
            }
        }
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        let watcher = hv.create_domain(
            "watcher",
            16,
            Box::new(Watcher {
                xs: xs.clone(),
                woken: false,
            }),
        );
        xs.register_watcher(watcher);
        let writer = hv.create_domain("writer", 16, Box::new(Writer { xs: xs.clone() }));
        let outcome = hv.run();
        assert_eq!(outcome, mirage_hypervisor::RunOutcome::AllExited);
        assert_eq!(hv.exit_code(watcher), Some(1));
        assert_eq!(hv.exit_code(writer), Some(0));
    }

    #[test]
    fn version_increments_per_write() {
        let xs = Xenstore::new();
        assert_eq!(xs.version(), 0);
        xs.write_host("k", "v");
        xs.write_host("k", "v2");
        assert_eq!(xs.version(), 2);
    }
}
