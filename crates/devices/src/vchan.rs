//! vchan — the fast on-host inter-VM byte transport (paper §3.5.1).
//!
//! "vchan is a fast shared memory interconnect through which data is
//! tracked via producer/consumer pointers … communicating VMs can exchange
//! data directly via shared memory without further intervention from the
//! hypervisor other than interrupt notifications. vchan is present in
//! upstream Linux 3.3.0 onwards, enabling easy interaction between Mirage
//! unikernels and Linux VMs."
//!
//! A vchan connection is two [`ByteRing`]s (one per direction) in pages the
//! *server* allocates and grants, plus one event channel. The handshake
//! runs over xenstore: the client announces its domid; the server grants
//! the rings to it and publishes grant references and a port.

use std::collections::VecDeque;

use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::GrantRef;
use mirage_hypervisor::{DomainEnv, DomainId};
use mirage_ring::ByteRing;
use mirage_runtime::channel::{self, Receiver, Sender};
use mirage_runtime::{DeviceService, Runtime};

use crate::xenstore::Xenstore;

/// Pages per direction ("multiple contiguous pages … to ensure it has a
/// reasonable buffer").
pub const VCHAN_PAGES: usize = 4;

/// Stack-facing byte-stream handle for one vchan endpoint.
pub struct VchanHandle {
    /// Bytes to transmit.
    pub tx: Sender<Vec<u8>>,
    /// Bytes received.
    pub rx: Receiver<Vec<u8>>,
}

impl std::fmt::Debug for VchanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("VchanHandle")
    }
}

enum Role {
    Server,
    Client,
}

enum VchanState {
    Init,
    Waiting,
    Connected,
}

/// One endpoint of a vchan connection ([`DeviceService`]).
pub struct VchanEndpoint {
    xs: Xenstore,
    name: String,
    role: Role,
    state: VchanState,
    registered_watch: bool,
    peer: Option<DomainId>,
    port: Option<Port>,
    tx_ring: Option<ByteRing>,
    rx_ring: Option<ByteRing>,
    from_stack: Receiver<Vec<u8>>,
    to_stack: Sender<Vec<u8>>,
    tx_buf: VecDeque<u8>,
}

impl VchanEndpoint {
    /// Creates the server endpoint (allocates the shared rings).
    pub fn server(xs: Xenstore, name: impl Into<String>) -> (VchanEndpoint, VchanHandle) {
        Self::build(xs, name, Role::Server)
    }

    /// Creates the client endpoint (maps the server's rings).
    pub fn client(xs: Xenstore, name: impl Into<String>) -> (VchanEndpoint, VchanHandle) {
        Self::build(xs, name, Role::Client)
    }

    fn build(
        xs: Xenstore,
        name: impl Into<String>,
        role: Role,
    ) -> (VchanEndpoint, VchanHandle) {
        let (tx_in, tx_out) = channel::channel();
        let (rx_in, rx_out) = channel::channel();
        (
            VchanEndpoint {
                xs,
                name: name.into(),
                role,
                state: VchanState::Init,
                registered_watch: false,
                peer: None,
                port: None,
                tx_ring: None,
                rx_ring: None,
                from_stack: tx_out,
                to_stack: rx_in,
                tx_buf: VecDeque::new(),
            },
            VchanHandle {
                tx: tx_in,
                rx: rx_out,
            },
        )
    }

    fn base(&self) -> String {
        format!("vchan/{}", self.name)
    }

    fn step_init(&mut self, env: &mut DomainEnv<'_>) -> bool {
        if !self.registered_watch {
            self.xs.register_watcher(env.domid());
            self.registered_watch = true;
        }
        let base = self.base();
        match self.role {
            Role::Client => {
                self.xs.write(
                    env,
                    &format!("{base}/client-domid"),
                    &env.domid().0.to_string(),
                );
                self.state = VchanState::Waiting;
                true
            }
            Role::Server => {
                let Some(client) = self
                    .xs
                    .read(env, &format!("{base}/client-domid"))
                    .and_then(|s| s.parse().ok())
                    .map(DomainId)
                else {
                    return false; // client announcement will wake us
                };
                self.peer = Some(client);
                // Server-to-client and client-to-server rings.
                let (s2c, s2c_region) = ByteRing::allocate(VCHAN_PAGES);
                let (c2s, c2s_region) = ByteRing::allocate(VCHAN_PAGES);
                let g1 = env.grant(client, s2c_region, true);
                let g2 = env.grant(client, c2s_region, true);
                self.tx_ring = Some(s2c);
                self.rx_ring = Some(c2s);
                let port = env.evtchn_alloc_unbound(client);
                self.xs
                    .write(env, &format!("{base}/s2c-ring"), &g1.0.to_string());
                self.xs
                    .write(env, &format!("{base}/c2s-ring"), &g2.0.to_string());
                self.xs
                    .write(env, &format!("{base}/event-port"), &port.0.to_string());
                self.xs.write(
                    env,
                    &format!("{base}/server-domid"),
                    &env.domid().0.to_string(),
                );
                // Bind completes when the client binds; remember our port.
                self.port = Some(port);
                self.state = VchanState::Waiting;
                true
            }
        }
    }

    fn step_waiting(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let base = self.base();
        match self.role {
            Role::Server => {
                // Wait for the client to flip state to connected.
                if self.xs.read(env, &format!("{base}/state")).as_deref() == Some("connected") {
                    self.state = VchanState::Connected;
                    env.observe(&format!("vchan-connected:{}", self.name));
                    true
                } else {
                    false
                }
            }
            Role::Client => {
                let (Some(server), Some(s2c), Some(c2s), Some(port)) = (
                    self.xs
                        .read(env, &format!("{base}/server-domid"))
                        .and_then(|s| s.parse::<u32>().ok()),
                    self.xs
                        .read(env, &format!("{base}/s2c-ring"))
                        .and_then(|s| s.parse::<u32>().ok()),
                    self.xs
                        .read(env, &format!("{base}/c2s-ring"))
                        .and_then(|s| s.parse::<u32>().ok()),
                    self.xs
                        .read(env, &format!("{base}/event-port"))
                        .and_then(|s| s.parse::<u32>().ok()),
                ) else {
                    return false;
                };
                let server = DomainId(server);
                self.peer = Some(server);
                let Ok(s2c_page) = env.grant_map(GrantRef(s2c), true) else {
                    return false;
                };
                let Ok(c2s_page) = env.grant_map(GrantRef(c2s), true) else {
                    return false;
                };
                // Client transmits on c2s, receives on s2c.
                self.tx_ring = Some(ByteRing::attach(c2s_page));
                self.rx_ring = Some(ByteRing::attach(s2c_page));
                let local = env.evtchn_bind(server, Port(port)).expect("server allocated");
                self.port = Some(local);
                self.xs.write(env, &format!("{base}/state"), "connected");
                env.evtchn_notify(local).expect("bound");
                env.observe(&format!("vchan-connected:{}", self.name));
                self.state = VchanState::Connected;
                true
            }
        }
    }

    fn step_connected(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        let port = self.port.expect("connected");
        let _ = env.evtchn_consume(port);

        // Receive.
        if let Some(rx) = &self.rx_ring {
            let mut buf = vec![0u8; 4096];
            loop {
                let (n, notify_writer) = rx.read(&mut buf);
                if notify_writer {
                    let _ = env.evtchn_notify(port);
                }
                if n == 0 {
                    break;
                }
                let _ = self.to_stack.send(buf[..n].to_vec());
                progressed = true;
            }
        }

        // Transmit.
        while let Some(chunk) = self.from_stack.try_recv() {
            self.tx_buf.extend(chunk);
        }
        if let Some(tx) = &self.tx_ring {
            while !self.tx_buf.is_empty() {
                let (head, _) = self.tx_buf.as_slices();
                let (n, notify_reader) = tx.write(head);
                if notify_reader {
                    let _ = env.evtchn_notify(port);
                }
                if n == 0 {
                    break;
                }
                self.tx_buf.drain(..n);
                progressed = true;
            }
        }
        // Announce blocking intentions; re-poll if data/space raced in.
        if let Some(rx) = &self.rx_ring {
            progressed |= rx.reader_about_to_block();
        }
        if !self.tx_buf.is_empty() {
            if let Some(tx) = &self.tx_ring {
                progressed |= tx.writer_about_to_block();
            }
        }
        progressed
    }
}

impl DeviceService for VchanEndpoint {
    fn service(&mut self, env: &mut DomainEnv<'_>, _rt: &Runtime) -> bool {
        match self.state {
            VchanState::Init => self.step_init(env),
            VchanState::Waiting => {
                let p = self.step_waiting(env);
                if matches!(self.state, VchanState::Connected) {
                    self.step_connected(env) || p
                } else {
                    p
                }
            }
            VchanState::Connected => self.step_connected(env),
        }
    }

    fn watch_ports(&self) -> Vec<Port> {
        self.port.into_iter().collect()
    }
}

impl std::fmt::Debug for VchanEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VchanEndpoint({})", self.name)
    }
}
