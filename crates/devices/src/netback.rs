//! The driver domain: netback, blkback and the virtual switch.
//!
//! In the paper's deployments dom0 hosts the backend halves of every
//! device: netback multiplexes guest NICs onto the physical network and
//! blkback services block rings from physical storage (§3.4). The
//! [`DriverDomain`] guest reproduces that role over the simulated
//! substrate: it discovers frontends through xenstore, maps their granted
//! rings, switches Ethernet frames between guests (learning by source MAC),
//! and services block requests against per-VBD [`SimulatedDisk`]s with the
//! device's timing profile.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use mirage_testkit::rng::Rng;
use mirage_testkit::sync::Mutex;

use mirage_cstruct::PktBuf;
use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::{GrantRef, SharedPage};
use mirage_hypervisor::{DomainEnv, DomainId, Dur, Guest, Step, Time, Wake};
use mirage_ring::BackRing;

use crate::blk::{wire as blkwire, DiskProfile, SimulatedDisk, SECTOR_SIZE};
use crate::netem::{DiskFaultPlan, Netem};
use crate::netfront::{gref_only, parse_gref, parse_tx_req, rx_rsp};
use crate::xenstore::Xenstore;

/// Broadcast MAC.
pub const MAC_BROADCAST: [u8; 6] = [0xFF; 6];

/// Frames queued for a congested guest before tail drop.
const OUT_QUEUE_CAP: usize = 512;

/// A host-side endpoint on the virtual switch — the harness's way to
/// source and sink raw frames without booting a guest (a tap device).
#[derive(Clone, Default)]
pub struct Tap {
    inner: Arc<Mutex<TapInner>>,
}

#[derive(Default)]
struct TapInner {
    mac: [u8; 6],
    to_switch: VecDeque<PktBuf>,
    from_switch: VecDeque<PktBuf>,
}

impl std::fmt::Debug for Tap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tap({:02x?})", self.inner.lock().mac)
    }
}

impl Tap {
    /// A tap with the given MAC.
    pub fn new(mac: [u8; 6]) -> Tap {
        Tap {
            inner: Arc::new(Mutex::new(TapInner {
                mac,
                ..TapInner::default()
            })),
        }
    }

    /// Queues a frame for injection into the switch. Call
    /// [`Hypervisor::wake_external`](mirage_hypervisor::Hypervisor::wake_external)
    /// on the driver domain afterwards so it notices.
    pub fn inject(&self, frame: impl Into<PktBuf>) {
        self.inner.lock().to_switch.push_back(frame.into());
    }

    /// Takes every frame the switch delivered to this tap.
    pub fn harvest(&self) -> Vec<PktBuf> {
        self.inner.lock().from_switch.drain(..).collect()
    }

    /// The tap's MAC address.
    pub fn mac(&self) -> [u8; 6] {
        self.inner.lock().mac
    }
}

struct NetBackendInst {
    base: String,
    frontend: DomainId,
    port: Port,
    tx_ring: BackRing,
    rx_ring: BackRing,
    mapped: HashMap<u32, SharedPage>,
    out_queue: VecDeque<PktBuf>,
    out_drops: u64,
    /// Set while the frontend has frames queued but no posted rx buffer —
    /// lets tail drops be attributed to a dead/stalled guest rather than
    /// ordinary congestion.
    rx_starved: bool,
}

/// A frame the link conditioner is holding until `release_at`.
struct DelayedFrame {
    release_at: Time,
    seq: u64,
    src_idx: usize,
    frame: PktBuf,
}

impl PartialEq for DelayedFrame {
    fn eq(&self, other: &Self) -> bool {
        self.release_at == other.release_at && self.seq == other.seq
    }
}
impl Eq for DelayedFrame {}
impl PartialOrd for DelayedFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (release time, offer order): ties release in the
        // order the conditioner saw them, keeping runs deterministic.
        other
            .release_at
            .cmp(&self.release_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct PendingBlk {
    done_at: Time,
    gref: GrantRef,
    id: u64,
    is_read: bool,
    ok: bool,
    sector: u64,
    count: u16,
}

impl PartialEq for PendingBlk {
    fn eq(&self, other: &Self) -> bool {
        self.done_at == other.done_at && self.id == other.id
    }
}
impl Eq for PendingBlk {}
impl PartialOrd for PendingBlk {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingBlk {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by completion time.
        other
            .done_at
            .cmp(&self.done_at)
            .then_with(|| other.id.cmp(&self.id))
    }
}

struct BlkBackendInst {
    base: String,
    frontend: DomainId,
    port: Port,
    ring: BackRing,
    mapped: HashMap<u32, SharedPage>,
    disk: SimulatedDisk,
    busy_until: Time,
    pending: BinaryHeap<PendingBlk>,
}

/// Network fabric parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetProfile {
    /// Link bandwidth in bits per second (default: gigabit Ethernet, as in
    /// the paper's Figure 8 testbed).
    pub bandwidth_bps: u64,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile {
            bandwidth_bps: 1_000_000_000,
        }
    }
}

impl NetProfile {
    /// A 10 GbE fabric (for the "expect 10 Gb/s with offload" discussion).
    pub fn ten_gbe() -> NetProfile {
        NetProfile {
            bandwidth_bps: 10_000_000_000,
        }
    }

    /// A 40 GbE fabric: the SMP scaling bench uses it so the throughput
    /// matrix measures CPU scaling, not NIC line rate.
    pub fn forty_gbe() -> NetProfile {
        NetProfile {
            bandwidth_bps: 40_000_000_000,
        }
    }

    fn wire_time(&self, bytes: usize) -> Dur {
        Dur::nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// Counters for the whole driver domain.
///
/// Drops are split by reason so chaos tests can distinguish *injected*
/// loss (netem) from *organic* loss (a congested or dead guest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverStats {
    /// Frames switched.
    pub frames_switched: u64,
    /// Frames tail-dropped at a live guest's full output queue.
    pub frames_dropped_congestion: u64,
    /// Frames the [`Netem`] link conditioner refused to deliver.
    pub frames_dropped_netem: u64,
    /// Frames tail-dropped while the guest had stopped posting rx buffers
    /// (typically: the domain was killed mid-connection).
    pub frames_dropped_no_rx_buffer: u64,
    /// Block requests completed.
    pub blk_completed: u64,
    /// Injected transient read failures.
    pub blk_read_errors: u64,
    /// Injected transient write failures (nothing persisted).
    pub blk_write_errors: u64,
    /// Injected torn writes (a prefix persisted, completion failed).
    pub blk_torn_writes: u64,
}

impl DriverStats {
    /// Total frames dropped for any reason.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped_congestion + self.frames_dropped_netem + self.frames_dropped_no_rx_buffer
    }
}

/// The dom0 guest: hosts every backend plus the virtual switch.
pub struct DriverDomain {
    xs: Xenstore,
    registered: bool,
    net_profile: NetProfile,
    disk_profile: DiskProfile,
    nics: Vec<NetBackendInst>,
    blks: Vec<BlkBackendInst>,
    seen: HashSet<String>,
    mac_table: HashMap<[u8; 6], usize>,
    taps: Vec<Tap>,
    stats: Arc<Mutex<DriverStats>>,
    netem: Option<Netem>,
    delayed: BinaryHeap<DelayedFrame>,
    delay_seq: u64,
    disk_rng: Rng,
}

impl DriverDomain {
    /// A driver domain over `xs`, with default gigabit network and PCIe-SSD
    /// disk profiles.
    pub fn new(xs: Xenstore) -> DriverDomain {
        DriverDomain::with_profiles(xs, NetProfile::default(), DiskProfile::pcie_ssd())
    }

    /// Full-control constructor.
    pub fn with_profiles(
        xs: Xenstore,
        net_profile: NetProfile,
        disk_profile: DiskProfile,
    ) -> DriverDomain {
        DriverDomain {
            xs,
            registered: false,
            net_profile,
            disk_profile,
            nics: Vec::new(),
            blks: Vec::new(),
            seen: HashSet::new(),
            mac_table: HashMap::new(),
            taps: Vec::new(),
            stats: Arc::new(Mutex::new(DriverStats::default())),
            netem: None,
            delayed: BinaryHeap::new(),
            delay_seq: 0,
            disk_rng: Rng::for_stream(mirage_testkit::DEFAULT_SEED, "netback-disk-faults"),
        }
    }

    /// Attaches a host-side tap endpoint to the switch.
    pub fn add_tap(&mut self, tap: Tap) {
        self.taps.push(tap);
    }

    /// Installs a [`Netem`] link conditioner on the switch's forwarding
    /// path. Without one (the default) the link is a perfect wire and the
    /// forwarding path is unchanged.
    pub fn set_netem(&mut self, netem: Netem) {
        self.netem = Some(netem);
    }

    /// Replaces the PRNG that drives [`DiskFaultPlan`] draws, so storage
    /// faults follow the caller's `MIRAGE_TEST_SEED` stream discipline.
    pub fn set_disk_fault_rng(&mut self, rng: Rng) {
        self.disk_rng = rng;
    }

    /// Shared counters handle (readable while the domain runs).
    pub fn stats_handle(&self) -> Arc<Mutex<DriverStats>> {
        Arc::clone(&self.stats)
    }

    fn discover(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        // Network frontends.
        for key in self.xs.keys_with_prefix("device/net/") {
            let Some(base) = key.strip_suffix("/state").map(str::to_owned) else {
                continue;
            };
            if self.seen.contains(&base) {
                continue;
            }
            if self.xs.read(env, &key).as_deref() != Some("initialising") {
                continue;
            }
            let read_u32 = |env: &mut DomainEnv<'_>, xs: &Xenstore, k: &str| {
                xs.read(env, k).and_then(|s| s.parse::<u32>().ok())
            };
            let (Some(dom), Some(txg), Some(rxg)) = (
                read_u32(env, &self.xs.clone(), &format!("{base}/frontend-domid")),
                read_u32(env, &self.xs.clone(), &format!("{base}/tx-ring")),
                read_u32(env, &self.xs.clone(), &format!("{base}/rx-ring")),
            ) else {
                continue;
            };
            let frontend = DomainId(dom);
            let Ok(tx_page) = env.grant_map(GrantRef(txg), true) else {
                continue;
            };
            let Ok(rx_page) = env.grant_map(GrantRef(rxg), true) else {
                continue;
            };
            let port = env.evtchn_alloc_unbound(frontend);
            self.xs
                .write(env, &format!("{base}/event-port"), &port.0.to_string());
            self.nics.push(NetBackendInst {
                base: base.clone(),
                frontend,
                port,
                tx_ring: BackRing::attach(tx_page),
                rx_ring: BackRing::attach(rx_page),
                mapped: HashMap::new(),
                out_queue: VecDeque::new(),
                out_drops: 0,
                rx_starved: false,
            });
            self.seen.insert(base);
            progressed = true;
        }
        // Block frontends.
        for key in self.xs.keys_with_prefix("device/blk/") {
            let Some(base) = key.strip_suffix("/state").map(str::to_owned) else {
                continue;
            };
            if self.seen.contains(&base) {
                continue;
            }
            if self.xs.read(env, &key).as_deref() != Some("initialising") {
                continue;
            }
            let (Some(dom), Some(ring_gref), Some(sectors)) = (
                self.xs
                    .read(env, &format!("{base}/frontend-domid"))
                    .and_then(|s| s.parse::<u32>().ok()),
                self.xs
                    .read(env, &format!("{base}/ring"))
                    .and_then(|s| s.parse::<u32>().ok()),
                self.xs
                    .read(env, &format!("{base}/sectors"))
                    .and_then(|s| s.parse::<u64>().ok()),
            ) else {
                continue;
            };
            let frontend = DomainId(dom);
            let Ok(ring_page) = env.grant_map(GrantRef(ring_gref), true) else {
                continue;
            };
            let port = env.evtchn_alloc_unbound(frontend);
            self.xs
                .write(env, &format!("{base}/event-port"), &port.0.to_string());
            self.blks.push(BlkBackendInst {
                base: base.clone(),
                frontend,
                port,
                ring: BackRing::attach(ring_page),
                mapped: HashMap::new(),
                disk: SimulatedDisk::new(self.disk_profile, sectors),
                busy_until: Time::ZERO,
                pending: BinaryHeap::new(),
            });
            self.seen.insert(base);
            progressed = true;
        }
        progressed
    }

    fn map_cached(
        env: &mut DomainEnv<'_>,
        cache: &mut HashMap<u32, SharedPage>,
        gref: u32,
        writable: bool,
    ) -> Option<SharedPage> {
        if let Some(p) = cache.get(&gref) {
            return Some(p.clone());
        }
        let page = env.grant_map(GrantRef(gref), writable).ok()?;
        cache.insert(gref, page.clone());
        Some(page)
    }

    /// Route `frame` from `src_idx` (usize::MAX for taps) to its
    /// destination queue(s). Multi-port delivery (taps, floods) clones the
    /// `PktBuf` — a refcount bump, never a byte copy.
    fn route(&mut self, src_idx: usize, frame: PktBuf) {
        if frame.len() < 14 {
            return;
        }
        let dst: [u8; 6] = frame[0..6].try_into().expect("checked length");
        let src: [u8; 6] = frame[6..12].try_into().expect("checked length");
        if src_idx != usize::MAX {
            self.mac_table.insert(src, src_idx);
        }
        self.stats.lock().frames_switched += 1;

        // Tap delivery by exact MAC or broadcast.
        let mut tap_hit = false;
        for tap in &self.taps {
            let mut inner = tap.inner.lock();
            if inner.mac == dst || dst == MAC_BROADCAST {
                inner.from_switch.push_back(frame.clone());
                tap_hit = true;
            }
        }

        match self.mac_table.get(&dst) {
            Some(&idx) if dst != MAC_BROADCAST => {
                Self::enqueue(&mut self.nics[idx], frame, &self.stats);
            }
            _ => {
                if tap_hit && dst != MAC_BROADCAST {
                    return;
                }
                // Flood to every other port.
                for (idx, nic) in self.nics.iter_mut().enumerate() {
                    if idx != src_idx {
                        Self::enqueue(nic, frame.clone(), &self.stats);
                    }
                }
            }
        }
    }

    fn enqueue(nic: &mut NetBackendInst, frame: PktBuf, stats: &Arc<Mutex<DriverStats>>) {
        if nic.out_queue.len() >= OUT_QUEUE_CAP {
            nic.out_drops += 1;
            let mut s = stats.lock();
            if nic.rx_starved {
                s.frames_dropped_no_rx_buffer += 1;
            } else {
                s.frames_dropped_congestion += 1;
            }
            return;
        }
        nic.out_queue.push_back(frame);
    }

    /// Offer a frame to the link conditioner (if any) before switching it.
    /// Conditioned frames may be dropped, duplicated, corrupted or held in
    /// the delay heap until their release time.
    fn offer(&mut self, now: Time, src_idx: usize, frame: PktBuf) {
        let outs = match self.netem.as_mut() {
            None => {
                self.route(src_idx, frame);
                return;
            }
            Some(nm) => nm.apply(now, frame),
        };
        if outs.is_empty() {
            self.stats.lock().frames_dropped_netem += 1;
            return;
        }
        for (release_at, frame) in outs {
            if release_at <= now {
                self.route(src_idx, frame);
            } else {
                self.delay_seq += 1;
                self.delayed.push(DelayedFrame {
                    release_at,
                    seq: self.delay_seq,
                    src_idx,
                    frame,
                });
            }
        }
    }

    fn service_net(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        // Release frames whose conditioner-imposed delay has elapsed.
        let now = env.now();
        while self
            .delayed
            .peek()
            .map(|d| d.release_at <= now)
            .unwrap_or(false)
        {
            let d = self.delayed.pop().expect("peeked");
            self.route(d.src_idx, d.frame);
            progressed = true;
        }
        // Ingest frames from guests. On a multi-vCPU driver domain each
        // NIC's wire serialisation is charged on its own lane (a
        // multi-queue switch port), so two saturated ports don't
        // serialise behind one core; a 1-vCPU dom0 behaves as before.
        let entry_lane = env.current_vcpu();
        let mut routed: Vec<(usize, PktBuf)> = Vec::new();
        for (idx, nic) in self.nics.iter_mut().enumerate() {
            env.on_vcpu(idx % env.vcpus());
            let _ = env.evtchn_consume(nic.port);
            let mut notify = false;
            while let Some(req) = nic.tx_ring.take_request() {
                let Some((gref, len)) = parse_tx_req(&req) else {
                    continue;
                };
                let Some(page) = Self::map_cached(env, &mut nic.mapped, gref, false) else {
                    continue;
                };
                // Reading the granted page models the NIC's DMA; once off
                // the wire the frame travels through the switch by
                // reference.
                let mut frame = vec![0u8; len as usize];
                page.read(|b| frame.copy_from_slice(&b[..len as usize]));
                // Wire serialisation time for this NIC.
                env.consume(self.net_profile.wire_time(frame.len()));
                routed.push((idx, PktBuf::from_vec(frame)));
                notify |= nic.tx_ring.push_response(&gref_only(gref)).unwrap_or(false);
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(nic.port);
            }
        }
        env.on_vcpu(entry_lane);
        for (idx, frame) in routed {
            let now = env.now();
            self.offer(now, idx, frame);
        }
        // Ingest frames from taps.
        let taps: Vec<Tap> = self.taps.clone();
        for tap in taps {
            loop {
                let frame = tap.inner.lock().to_switch.pop_front();
                let Some(frame) = frame else { break };
                env.consume(self.net_profile.wire_time(frame.len()));
                let now = env.now();
                self.offer(now, usize::MAX, frame);
                progressed = true;
            }
        }
        // Deliver queued frames into posted rx buffers.
        for nic in &mut self.nics {
            let mut notify = false;
            while nic.out_queue.front().is_some() {
                let Some(req) = nic.rx_ring.take_request() else {
                    nic.rx_starved = true;
                    break;
                };
                nic.rx_starved = false;
                let Some(gref) = parse_gref(&req) else {
                    continue;
                };
                let Some(page) = Self::map_cached(env, &mut nic.mapped, gref, true) else {
                    continue;
                };
                let frame = nic.out_queue.pop_front().expect("peeked");
                page.write(|b| b[..frame.len()].copy_from_slice(&frame));
                notify |= nic
                    .rx_ring
                    .push_response(&rx_rsp(gref, frame.len() as u16))
                    .unwrap_or(false);
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(nic.port);
            }
        }
        progressed
    }

    fn service_blk(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        for blk in &mut self.blks {
            let _ = env.evtchn_consume(blk.port);
            // Accept new requests, scheduling their completion times.
            while let Some(req) = blk.ring.take_request() {
                let Some((op, id, sector, count, gref)) = blkwire::parse_req(&req) else {
                    continue;
                };
                let bytes = count as usize * SECTOR_SIZE;
                let in_range = sector + count as u64 <= blk.disk.sectors();
                if !in_range {
                    // Fail immediately.
                    let notify = blk
                        .ring
                        .push_response(&blkwire::rsp(id, false, gref))
                        .unwrap_or(false);
                    if notify {
                        let _ = env.evtchn_notify(blk.port);
                    }
                    continue;
                }
                let is_read = op == blkwire::OP_READ;
                let faults = blk.disk.profile().faults.unwrap_or_default();
                let mut ok = true;
                if is_read {
                    if DiskFaultPlan::hit(&mut self.disk_rng, faults.read_error_ppm) {
                        // Transient read failure: data stays intact, the
                        // completion reports failure.
                        ok = false;
                        self.stats.lock().blk_read_errors += 1;
                    }
                } else {
                    // Writes capture the data now (the page may be reused).
                    let mut data = vec![0u8; bytes];
                    if let Some(page) =
                        Self::map_cached(env, &mut blk.mapped, gref, false)
                    {
                        page.read(|b| data.copy_from_slice(&b[..bytes]));
                    }
                    if DiskFaultPlan::hit(&mut self.disk_rng, faults.write_error_ppm) {
                        // Transient write failure: nothing persists.
                        ok = false;
                        self.stats.lock().blk_write_errors += 1;
                    } else if DiskFaultPlan::hit(&mut self.disk_rng, faults.torn_write_ppm) {
                        // Torn write: only a sector prefix persists — the
                        // on-disk state a power cut mid-request would leave.
                        ok = false;
                        let keep =
                            self.disk_rng.gen_range(0..count) as usize * SECTOR_SIZE;
                        blk.disk.write(sector, &data[..keep]);
                        self.stats.lock().blk_torn_writes += 1;
                    } else {
                        blk.disk.write(sector, &data);
                    }
                }
                // The device pipelines: occupancy is the transfer time
                // only, while the fixed latency overlaps across queued
                // requests (NCQ on the paper's PCIe SSD).
                let start = blk.busy_until.max(env.now());
                let transfer = blk.disk.profile().transfer_time(bytes);
                let done_at = start + transfer + blk.disk.profile().latency;
                blk.busy_until = start + transfer;
                blk.pending.push(PendingBlk {
                    done_at,
                    gref: GrantRef(gref),
                    id,
                    is_read,
                    ok,
                    sector,
                    count,
                });
                progressed = true;
            }
            // Complete requests whose service time has elapsed.
            let now = env.now();
            let mut notify = false;
            while blk
                .pending
                .peek()
                .map(|p| p.done_at <= now)
                .unwrap_or(false)
            {
                let p = blk.pending.pop().expect("peeked");
                if p.is_read && p.ok {
                    let data = blk.disk.read(p.sector, p.count);
                    if let Some(page) =
                        Self::map_cached(env, &mut blk.mapped, p.gref.0, true)
                    {
                        page.write(|b| b[..data.len()].copy_from_slice(&data));
                    }
                }
                notify |= blk
                    .ring
                    .push_response(&blkwire::rsp(p.id, p.ok, p.gref.0))
                    .unwrap_or(false);
                self.stats.lock().blk_completed += 1;
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(blk.port);
            }
        }
        progressed
    }

    fn next_deadline(&self) -> Option<Time> {
        let blk = self
            .blks
            .iter()
            .filter_map(|b| b.pending.peek().map(|p| p.done_at))
            .min();
        let net = self.delayed.peek().map(|d| d.release_at);
        match (blk, net) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

impl Guest for DriverDomain {
    fn step(&mut self, env: &mut DomainEnv<'_>) -> Step {
        if !self.registered {
            self.xs.register_watcher(env.domid());
            self.xs
                .write(env, "backend-domid", &env.domid().0.to_string());
            self.registered = true;
        }
        loop {
            let mut progressed = self.discover(env);
            progressed |= self.service_net(env);
            progressed |= self.service_blk(env);
            // Arm request notifications before blocking; any race means
            // another pass instead of a sleep.
            for nic in &mut self.nics {
                progressed |= nic.tx_ring.enable_request_notifications();
                if !nic.out_queue.is_empty() {
                    progressed |= nic.rx_ring.enable_request_notifications();
                }
            }
            for blk in &mut self.blks {
                progressed |= blk.ring.enable_request_notifications();
            }
            if !progressed {
                break;
            }
        }
        let ports: Vec<Port> = self
            .nics
            .iter()
            .map(|n| n.port)
            .chain(self.blks.iter().map(|b| b.port))
            .collect();
        Step::Yield(Wake {
            deadline: self.next_deadline(),
            ports,
        })
    }
}

impl std::fmt::Debug for DriverDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverDomain")
            .field("nics", &self.nics.len())
            .field("blks", &self.blks.len())
            .field("taps", &self.taps.len())
            .finish()
    }
}

// Silence dead-code warnings on fields kept for debugging/telemetry.
impl NetBackendInst {
    #[allow(dead_code)]
    fn describe(&self) -> (&str, DomainId, u64) {
        (&self.base, self.frontend, self.out_drops)
    }
}

impl BlkBackendInst {
    #[allow(dead_code)]
    fn describe(&self) -> (&str, DomainId) {
        (&self.base, self.frontend)
    }
}
