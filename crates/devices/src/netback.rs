//! The driver domain: netback, blkback and the virtual switch.
//!
//! In the paper's deployments dom0 hosts the backend halves of every
//! device: netback multiplexes guest NICs onto the physical network and
//! blkback services block rings from physical storage (§3.4). The
//! [`DriverDomain`] guest reproduces that role over the simulated
//! substrate: it discovers frontends through xenstore, maps their granted
//! rings, switches Ethernet frames between guests (learning by source MAC),
//! and services block requests against per-VBD [`SimulatedDisk`]s with the
//! device's timing profile.
//!
//! The switch speaks both ring ABIs. A port is either a Xen-ring NIC
//! (`device/net/...`, one TX/RX descriptor-ring pair) or a virtio NIC
//! (`device/vnet/...`, one TX/RX split-virtqueue pair *per queue*, RSS
//! classification on delivery); block service likewise covers Xen rings
//! (`device/blk/...`) and virtio queues (`device/vblk/...`). Frames and
//! requests from both families flow through the same forwarding, link
//! conditioning, fault injection and timing paths, so a differential run
//! only varies the transport.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use mirage_testkit::rng::Rng;
use mirage_testkit::sync::Mutex;

use mirage_cstruct::PktBuf;
use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::{GrantRef, SharedPage};
use mirage_hypervisor::{DomainEnv, DomainId, Dur, Guest, Step, Time, Wake};
use mirage_ring::BackRing;

use crate::blk::{wire as blkwire, DiskProfile, SimulatedDisk, SECTOR_SIZE};
use crate::netem::{DiskFaultPlan, Netem};
use crate::netfront::{gref_only, parse_gref, parse_tx_req, rx_rsp, MAX_FRAME};
use crate::virtio::virtqueue::{split_addr, DeviceQueue};
use crate::virtio::blk::{STATUS_IOERR, STATUS_OK};
use crate::xenstore::Xenstore;

/// A switch port, across both ring ABIs. Taps inject as
/// [`PortRef::External`]: no MAC learning, no flood self-exclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PortRef {
    /// Index into the Xen-ring NIC table.
    Xen(usize),
    /// Index into the virtio NIC table.
    Vnet(usize),
    /// A host-side tap.
    External,
}

/// Broadcast MAC.
pub const MAC_BROADCAST: [u8; 6] = [0xFF; 6];

/// Frames queued for a congested guest before tail drop.
const OUT_QUEUE_CAP: usize = 512;

/// A host-side endpoint on the virtual switch — the harness's way to
/// source and sink raw frames without booting a guest (a tap device).
#[derive(Clone, Default)]
pub struct Tap {
    inner: Arc<Mutex<TapInner>>,
}

#[derive(Default)]
struct TapInner {
    mac: [u8; 6],
    to_switch: VecDeque<PktBuf>,
    from_switch: VecDeque<PktBuf>,
}

impl std::fmt::Debug for Tap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tap({:02x?})", self.inner.lock().mac)
    }
}

impl Tap {
    /// A tap with the given MAC.
    pub fn new(mac: [u8; 6]) -> Tap {
        Tap {
            inner: Arc::new(Mutex::new(TapInner {
                mac,
                ..TapInner::default()
            })),
        }
    }

    /// Queues a frame for injection into the switch. Call
    /// [`Hypervisor::wake_external`](mirage_hypervisor::Hypervisor::wake_external)
    /// on the driver domain afterwards so it notices.
    pub fn inject(&self, frame: impl Into<PktBuf>) {
        self.inner.lock().to_switch.push_back(frame.into());
    }

    /// Takes every frame the switch delivered to this tap.
    pub fn harvest(&self) -> Vec<PktBuf> {
        self.inner.lock().from_switch.drain(..).collect()
    }

    /// The tap's MAC address.
    pub fn mac(&self) -> [u8; 6] {
        self.inner.lock().mac
    }
}

struct NetBackendInst {
    base: String,
    frontend: DomainId,
    port: Port,
    tx_ring: BackRing,
    rx_ring: BackRing,
    mapped: HashMap<u32, SharedPage>,
    out_queue: VecDeque<PktBuf>,
    out_drops: u64,
    /// Set while the frontend has frames queued but no posted rx buffer —
    /// lets tail drops be attributed to a dead/stalled guest rather than
    /// ordinary congestion.
    rx_starved: bool,
}

/// A frame the link conditioner is holding until `release_at`.
struct DelayedFrame {
    release_at: Time,
    seq: u64,
    src: PortRef,
    frame: PktBuf,
}

impl PartialEq for DelayedFrame {
    fn eq(&self, other: &Self) -> bool {
        self.release_at == other.release_at && self.seq == other.seq
    }
}
impl Eq for DelayedFrame {}
impl PartialOrd for DelayedFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (release time, offer order): ties release in the
        // order the conditioner saw them, keeping runs deterministic.
        other
            .release_at
            .cmp(&self.release_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct PendingBlk {
    done_at: Time,
    gref: GrantRef,
    id: u64,
    is_read: bool,
    ok: bool,
    sector: u64,
    count: u16,
}

impl PartialEq for PendingBlk {
    fn eq(&self, other: &Self) -> bool {
        self.done_at == other.done_at && self.id == other.id
    }
}
impl Eq for PendingBlk {}
impl PartialOrd for PendingBlk {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingBlk {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by completion time.
        other
            .done_at
            .cmp(&self.done_at)
            .then_with(|| other.id.cmp(&self.id))
    }
}

struct BlkBackendInst {
    base: String,
    frontend: DomainId,
    port: Port,
    ring: BackRing,
    mapped: HashMap<u32, SharedPage>,
    disk: SimulatedDisk,
    busy_until: Time,
    pending: BinaryHeap<PendingBlk>,
}

/// One virtqueue pair of a virtio NIC port, with its own event channel
/// and per-queue output queue (frames already RSS-classified to it).
struct VnetQueueBack {
    port: Port,
    tx: DeviceQueue,
    rx: DeviceQueue,
    out_queue: VecDeque<PktBuf>,
}

struct VnetBackendInst {
    base: String,
    frontend: DomainId,
    queues: Vec<VnetQueueBack>,
    mapped: HashMap<u32, SharedPage>,
    out_drops: u64,
    /// Set while the frontend has frames queued but no posted RX chain
    /// (same dead-guest attribution as the Xen path).
    rx_starved: bool,
}

/// A virtio block request in service, completing at `done_at`. The
/// descriptor chain stays owned by the device until then; `data_addr` /
/// `status_addr` are where the completion writes back.
struct PendingVBlk {
    done_at: Time,
    head: u16,
    id: u64,
    is_read: bool,
    ok: bool,
    sector: u64,
    count: u16,
    data_addr: u64,
    status_addr: u64,
}

impl PartialEq for PendingVBlk {
    fn eq(&self, other: &Self) -> bool {
        self.done_at == other.done_at && self.id == other.id
    }
}
impl Eq for PendingVBlk {}
impl PartialOrd for PendingVBlk {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingVBlk {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by completion time.
        other
            .done_at
            .cmp(&self.done_at)
            .then_with(|| other.id.cmp(&self.id))
    }
}

struct VblkBackendInst {
    base: String,
    frontend: DomainId,
    port: Port,
    queue: DeviceQueue,
    mapped: HashMap<u32, SharedPage>,
    disk: SimulatedDisk,
    busy_until: Time,
    pending: BinaryHeap<PendingVBlk>,
}

/// Network fabric parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetProfile {
    /// Link bandwidth in bits per second (default: gigabit Ethernet, as in
    /// the paper's Figure 8 testbed).
    pub bandwidth_bps: u64,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile {
            bandwidth_bps: 1_000_000_000,
        }
    }
}

impl NetProfile {
    /// A 10 GbE fabric (for the "expect 10 Gb/s with offload" discussion).
    pub fn ten_gbe() -> NetProfile {
        NetProfile {
            bandwidth_bps: 10_000_000_000,
        }
    }

    /// A 40 GbE fabric: the SMP scaling bench uses it so the throughput
    /// matrix measures CPU scaling, not NIC line rate.
    pub fn forty_gbe() -> NetProfile {
        NetProfile {
            bandwidth_bps: 40_000_000_000,
        }
    }

    fn wire_time(&self, bytes: usize) -> Dur {
        Dur::nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// Counters for the whole driver domain.
///
/// Drops are split by reason so chaos tests can distinguish *injected*
/// loss (netem) from *organic* loss (a congested or dead guest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverStats {
    /// Frames switched.
    pub frames_switched: u64,
    /// Frames tail-dropped at a live guest's full output queue.
    pub frames_dropped_congestion: u64,
    /// Frames the [`Netem`] link conditioner refused to deliver.
    pub frames_dropped_netem: u64,
    /// Frames tail-dropped while the guest had stopped posting rx buffers
    /// (typically: the domain was killed mid-connection).
    pub frames_dropped_no_rx_buffer: u64,
    /// Block requests completed.
    pub blk_completed: u64,
    /// Injected transient read failures.
    pub blk_read_errors: u64,
    /// Injected transient write failures (nothing persisted).
    pub blk_write_errors: u64,
    /// Injected torn writes (a prefix persisted, completion failed).
    pub blk_torn_writes: u64,
}

impl DriverStats {
    /// Total frames dropped for any reason.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped_congestion + self.frames_dropped_netem + self.frames_dropped_no_rx_buffer
    }
}

/// The dom0 guest: hosts every backend plus the virtual switch.
pub struct DriverDomain {
    xs: Xenstore,
    registered: bool,
    net_profile: NetProfile,
    disk_profile: DiskProfile,
    nics: Vec<NetBackendInst>,
    blks: Vec<BlkBackendInst>,
    vnets: Vec<VnetBackendInst>,
    vblks: Vec<VblkBackendInst>,
    seen: HashSet<String>,
    mac_table: HashMap<[u8; 6], PortRef>,
    taps: Vec<Tap>,
    stats: Arc<Mutex<DriverStats>>,
    netem: Option<Netem>,
    delayed: BinaryHeap<DelayedFrame>,
    delay_seq: u64,
    disk_rng: Rng,
}

impl DriverDomain {
    /// A driver domain over `xs`, with default gigabit network and PCIe-SSD
    /// disk profiles.
    pub fn new(xs: Xenstore) -> DriverDomain {
        DriverDomain::with_profiles(xs, NetProfile::default(), DiskProfile::pcie_ssd())
    }

    /// Full-control constructor.
    pub fn with_profiles(
        xs: Xenstore,
        net_profile: NetProfile,
        disk_profile: DiskProfile,
    ) -> DriverDomain {
        DriverDomain {
            xs,
            registered: false,
            net_profile,
            disk_profile,
            nics: Vec::new(),
            blks: Vec::new(),
            vnets: Vec::new(),
            vblks: Vec::new(),
            seen: HashSet::new(),
            mac_table: HashMap::new(),
            taps: Vec::new(),
            stats: Arc::new(Mutex::new(DriverStats::default())),
            netem: None,
            delayed: BinaryHeap::new(),
            delay_seq: 0,
            disk_rng: Rng::for_stream(mirage_testkit::DEFAULT_SEED, "netback-disk-faults"),
        }
    }

    /// Attaches a host-side tap endpoint to the switch.
    pub fn add_tap(&mut self, tap: Tap) {
        self.taps.push(tap);
    }

    /// Installs a [`Netem`] link conditioner on the switch's forwarding
    /// path. Without one (the default) the link is a perfect wire and the
    /// forwarding path is unchanged.
    pub fn set_netem(&mut self, netem: Netem) {
        self.netem = Some(netem);
    }

    /// Replaces the PRNG that drives [`DiskFaultPlan`] draws, so storage
    /// faults follow the caller's `MIRAGE_TEST_SEED` stream discipline.
    pub fn set_disk_fault_rng(&mut self, rng: Rng) {
        self.disk_rng = rng;
    }

    /// Shared counters handle (readable while the domain runs).
    pub fn stats_handle(&self) -> Arc<Mutex<DriverStats>> {
        Arc::clone(&self.stats)
    }

    fn discover(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        // Network frontends.
        for key in self.xs.keys_with_prefix("device/net/") {
            let Some(base) = key.strip_suffix("/state").map(str::to_owned) else {
                continue;
            };
            if self.seen.contains(&base) {
                continue;
            }
            if self.xs.read(env, &key).as_deref() != Some("initialising") {
                continue;
            }
            let read_u32 = |env: &mut DomainEnv<'_>, xs: &Xenstore, k: &str| {
                xs.read(env, k).and_then(|s| s.parse::<u32>().ok())
            };
            let (Some(dom), Some(txg), Some(rxg)) = (
                read_u32(env, &self.xs.clone(), &format!("{base}/frontend-domid")),
                read_u32(env, &self.xs.clone(), &format!("{base}/tx-ring")),
                read_u32(env, &self.xs.clone(), &format!("{base}/rx-ring")),
            ) else {
                continue;
            };
            let frontend = DomainId(dom);
            let Ok(tx_page) = env.grant_map(GrantRef(txg), true) else {
                continue;
            };
            let Ok(rx_page) = env.grant_map(GrantRef(rxg), true) else {
                continue;
            };
            let port = env.evtchn_alloc_unbound(frontend);
            self.xs
                .write(env, &format!("{base}/event-port"), &port.0.to_string());
            self.nics.push(NetBackendInst {
                base: base.clone(),
                frontend,
                port,
                tx_ring: BackRing::attach(tx_page),
                rx_ring: BackRing::attach(rx_page),
                mapped: HashMap::new(),
                out_queue: VecDeque::new(),
                out_drops: 0,
                rx_starved: false,
            });
            self.seen.insert(base);
            progressed = true;
        }
        // Block frontends.
        for key in self.xs.keys_with_prefix("device/blk/") {
            let Some(base) = key.strip_suffix("/state").map(str::to_owned) else {
                continue;
            };
            if self.seen.contains(&base) {
                continue;
            }
            if self.xs.read(env, &key).as_deref() != Some("initialising") {
                continue;
            }
            let (Some(dom), Some(ring_gref), Some(sectors)) = (
                self.xs
                    .read(env, &format!("{base}/frontend-domid"))
                    .and_then(|s| s.parse::<u32>().ok()),
                self.xs
                    .read(env, &format!("{base}/ring"))
                    .and_then(|s| s.parse::<u32>().ok()),
                self.xs
                    .read(env, &format!("{base}/sectors"))
                    .and_then(|s| s.parse::<u64>().ok()),
            ) else {
                continue;
            };
            let frontend = DomainId(dom);
            let Ok(ring_page) = env.grant_map(GrantRef(ring_gref), true) else {
                continue;
            };
            let port = env.evtchn_alloc_unbound(frontend);
            self.xs
                .write(env, &format!("{base}/event-port"), &port.0.to_string());
            self.blks.push(BlkBackendInst {
                base: base.clone(),
                frontend,
                port,
                ring: BackRing::attach(ring_page),
                mapped: HashMap::new(),
                disk: SimulatedDisk::new(self.disk_profile, sectors),
                busy_until: Time::ZERO,
                pending: BinaryHeap::new(),
            });
            self.seen.insert(base);
            progressed = true;
        }
        // Virtio network frontends: one split-virtqueue pair per queue,
        // one event channel per queue.
        for key in self.xs.keys_with_prefix("device/vnet/") {
            let Some(base) = key.strip_suffix("/state").map(str::to_owned) else {
                continue;
            };
            if self.seen.contains(&base) {
                continue;
            }
            if self.xs.read(env, &key).as_deref() != Some("initialising") {
                continue;
            }
            let (Some(dom), Some(queues)) = (
                self.xs
                    .read(env, &format!("{base}/frontend-domid"))
                    .and_then(|s| s.parse::<u32>().ok()),
                self.xs
                    .read(env, &format!("{base}/queues"))
                    .and_then(|s| s.parse::<usize>().ok()),
            ) else {
                continue;
            };
            if queues == 0 {
                continue;
            }
            let frontend = DomainId(dom);
            let Some(backs) = self.attach_vnet_queues(env, &base, queues) else {
                continue;
            };
            let mut inst = VnetBackendInst {
                base: base.clone(),
                frontend,
                queues: Vec::with_capacity(queues),
                mapped: HashMap::new(),
                out_drops: 0,
                rx_starved: false,
            };
            for (q, (tx, rx)) in backs.into_iter().enumerate() {
                let port = env.evtchn_alloc_unbound(frontend);
                self.xs.write(
                    env,
                    &format!("{base}/q{q}/event-port"),
                    &port.0.to_string(),
                );
                inst.queues.push(VnetQueueBack {
                    port,
                    tx,
                    rx,
                    out_queue: VecDeque::new(),
                });
            }
            self.vnets.push(inst);
            self.seen.insert(base);
            progressed = true;
        }
        // Virtio block frontends: one queue, three-descriptor chains.
        for key in self.xs.keys_with_prefix("device/vblk/") {
            let Some(base) = key.strip_suffix("/state").map(str::to_owned) else {
                continue;
            };
            if self.seen.contains(&base) {
                continue;
            }
            if self.xs.read(env, &key).as_deref() != Some("initialising") {
                continue;
            }
            let (Some(dom), Some(sectors)) = (
                self.xs
                    .read(env, &format!("{base}/frontend-domid"))
                    .and_then(|s| s.parse::<u32>().ok()),
                self.xs
                    .read(env, &format!("{base}/sectors"))
                    .and_then(|s| s.parse::<u64>().ok()),
            ) else {
                continue;
            };
            let frontend = DomainId(dom);
            let Some(queue) = self.attach_device_queue(env, &base, "") else {
                continue;
            };
            let port = env.evtchn_alloc_unbound(frontend);
            self.xs
                .write(env, &format!("{base}/event-port"), &port.0.to_string());
            self.vblks.push(VblkBackendInst {
                base: base.clone(),
                frontend,
                port,
                queue,
                mapped: HashMap::new(),
                disk: SimulatedDisk::new(self.disk_profile, sectors),
                busy_until: Time::ZERO,
                pending: BinaryHeap::new(),
            });
            self.seen.insert(base);
            progressed = true;
        }
        progressed
    }

    /// Maps one queue's three granted areas (`{prefix}desc/avail/used`
    /// under `base`) and attaches the device half. The used area is the
    /// only one mapped writable — the device never touches descriptors or
    /// the avail ring.
    fn attach_device_queue(
        &self,
        env: &mut DomainEnv<'_>,
        base: &str,
        prefix: &str,
    ) -> Option<DeviceQueue> {
        let read_gref = |env: &mut DomainEnv<'_>, area: &str| {
            self.xs
                .read(env, &format!("{base}/{prefix}{area}"))
                .and_then(|s| s.parse::<u32>().ok())
        };
        let desc = read_gref(env, "desc")?;
        let avail = read_gref(env, "avail")?;
        let used = read_gref(env, "used")?;
        let pages = crate::virtio::virtqueue::QueuePages {
            desc: env.grant_map(GrantRef(desc), false).ok()?,
            avail: env.grant_map(GrantRef(avail), false).ok()?,
            used: env.grant_map(GrantRef(used), true).ok()?,
        };
        Some(DeviceQueue::attach(pages))
    }

    /// Maps every queue pair of a vnet frontend, or `None` if any grant
    /// is not yet visible (the frontend writes them all before flipping
    /// its state, so a partial read means a malformed handshake).
    fn attach_vnet_queues(
        &self,
        env: &mut DomainEnv<'_>,
        base: &str,
        queues: usize,
    ) -> Option<Vec<(DeviceQueue, DeviceQueue)>> {
        let mut out = Vec::with_capacity(queues);
        for q in 0..queues {
            let tx = self.attach_device_queue(env, base, &format!("q{q}/tx-"))?;
            let rx = self.attach_device_queue(env, base, &format!("q{q}/rx-"))?;
            out.push((tx, rx));
        }
        Some(out)
    }

    fn map_cached(
        env: &mut DomainEnv<'_>,
        cache: &mut HashMap<u32, SharedPage>,
        gref: u32,
        writable: bool,
    ) -> Option<SharedPage> {
        if let Some(p) = cache.get(&gref) {
            return Some(p.clone());
        }
        let page = env.grant_map(GrantRef(gref), writable).ok()?;
        cache.insert(gref, page.clone());
        Some(page)
    }

    /// Route `frame` from `src` to its destination queue(s), across both
    /// port families. Multi-port delivery (taps, floods) clones the
    /// `PktBuf` — a refcount bump, never a byte copy.
    fn route(&mut self, src: PortRef, frame: PktBuf) {
        if frame.len() < 14 {
            return;
        }
        let dst: [u8; 6] = frame[0..6].try_into().expect("checked length");
        let src_mac: [u8; 6] = frame[6..12].try_into().expect("checked length");
        if src != PortRef::External {
            self.mac_table.insert(src_mac, src);
        }
        self.stats.lock().frames_switched += 1;

        // Tap delivery by exact MAC or broadcast.
        let mut tap_hit = false;
        for tap in &self.taps {
            let mut inner = tap.inner.lock();
            if inner.mac == dst || dst == MAC_BROADCAST {
                inner.from_switch.push_back(frame.clone());
                tap_hit = true;
            }
        }

        match self.mac_table.get(&dst) {
            Some(&port) if dst != MAC_BROADCAST => {
                self.deliver(port, frame);
            }
            _ => {
                if tap_hit && dst != MAC_BROADCAST {
                    return;
                }
                // Flood to every other port, both families.
                for idx in 0..self.nics.len() {
                    if PortRef::Xen(idx) != src {
                        self.deliver(PortRef::Xen(idx), frame.clone());
                    }
                }
                for idx in 0..self.vnets.len() {
                    if PortRef::Vnet(idx) != src {
                        self.deliver(PortRef::Vnet(idx), frame.clone());
                    }
                }
            }
        }
    }

    /// Queues `frame` at a port, tail-dropping when its output queue is
    /// full. Virtio ports classify into a per-queue output queue with the
    /// same RSS hash the stack's demux uses, so every flow lands on the
    /// virtqueue — and vCPU — owning its shard.
    fn deliver(&mut self, port: PortRef, frame: PktBuf) {
        let (queue, drops, starved) = match port {
            PortRef::Xen(idx) => {
                let nic = &mut self.nics[idx];
                (&mut nic.out_queue, &mut nic.out_drops, nic.rx_starved)
            }
            PortRef::Vnet(idx) => {
                let vnet = &mut self.vnets[idx];
                let q = crate::rss::rx_queue(&frame, vnet.queues.len());
                (
                    &mut vnet.queues[q].out_queue,
                    &mut vnet.out_drops,
                    vnet.rx_starved,
                )
            }
            PortRef::External => return,
        };
        if queue.len() >= OUT_QUEUE_CAP {
            *drops += 1;
            let mut s = self.stats.lock();
            if starved {
                s.frames_dropped_no_rx_buffer += 1;
            } else {
                s.frames_dropped_congestion += 1;
            }
            return;
        }
        queue.push_back(frame);
    }

    /// Offer a frame to the link conditioner (if any) before switching it.
    /// Conditioned frames may be dropped, duplicated, corrupted or held in
    /// the delay heap until their release time.
    fn offer(&mut self, now: Time, src: PortRef, frame: PktBuf) {
        let outs = match self.netem.as_mut() {
            None => {
                self.route(src, frame);
                return;
            }
            Some(nm) => nm.apply(now, frame),
        };
        if outs.is_empty() {
            self.stats.lock().frames_dropped_netem += 1;
            return;
        }
        for (release_at, frame) in outs {
            if release_at <= now {
                self.route(src, frame);
            } else {
                self.delay_seq += 1;
                self.delayed.push(DelayedFrame {
                    release_at,
                    seq: self.delay_seq,
                    src,
                    frame,
                });
            }
        }
    }

    fn service_net(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        // Release frames whose conditioner-imposed delay has elapsed.
        let now = env.now();
        while self
            .delayed
            .peek()
            .map(|d| d.release_at <= now)
            .unwrap_or(false)
        {
            let d = self.delayed.pop().expect("peeked");
            self.route(d.src, d.frame);
            progressed = true;
        }
        // Ingest frames from guests. On a multi-vCPU driver domain each
        // NIC's wire serialisation is charged on its own lane (a
        // multi-queue switch port), so two saturated ports don't
        // serialise behind one core; a 1-vCPU dom0 behaves as before.
        let entry_lane = env.current_vcpu();
        let mut routed: Vec<(PortRef, PktBuf)> = Vec::new();
        for (idx, nic) in self.nics.iter_mut().enumerate() {
            env.on_vcpu(idx % env.vcpus());
            let _ = env.evtchn_consume(nic.port);
            let mut notify = false;
            while let Some(req) = nic.tx_ring.take_request() {
                let Some((gref, len)) = parse_tx_req(&req) else {
                    continue;
                };
                let Some(page) = Self::map_cached(env, &mut nic.mapped, gref, false) else {
                    continue;
                };
                // Reading the granted page models the NIC's DMA; once off
                // the wire the frame travels through the switch by
                // reference.
                let mut frame = vec![0u8; len as usize];
                page.read(|b| frame.copy_from_slice(&b[..len as usize]));
                // Wire serialisation time for this NIC.
                env.consume(self.net_profile.wire_time(frame.len()));
                routed.push((PortRef::Xen(idx), PktBuf::from_vec(frame)));
                notify |= nic.tx_ring.push_response(&gref_only(gref)).unwrap_or(false);
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(nic.port);
            }
        }
        // Ingest frames from virtio TX virtqueues: pop the chain, read
        // the (single readable) buffer, return the chain with a used
        // entry. Doorbell discipline mirrors the frontend: at most one
        // interrupt per queue per pass.
        for (idx, vnet) in self.vnets.iter_mut().enumerate() {
            env.on_vcpu(idx % env.vcpus());
            for qb in vnet.queues.iter_mut() {
                let _ = env.evtchn_consume(qb.port);
                let mut notify = false;
                while let Some(chain) = qb.tx.pop_avail() {
                    let mut frame = Vec::new();
                    for &(addr, len, device_writes) in &chain.bufs {
                        if device_writes {
                            continue; // TX payloads are read-only buffers
                        }
                        let (gref, off) = split_addr(addr);
                        let len = len as usize;
                        let Some(page) = Self::map_cached(env, &mut vnet.mapped, gref, false)
                        else {
                            continue;
                        };
                        if off + len > mirage_hypervisor::PAGE_SIZE {
                            continue;
                        }
                        let start = frame.len();
                        frame.resize(start + len, 0);
                        page.read(|b| frame[start..].copy_from_slice(&b[off..off + len]));
                    }
                    notify |= qb.tx.push_used(chain.head, 0);
                    if frame.is_empty() || frame.len() > MAX_FRAME {
                        continue;
                    }
                    env.consume(self.net_profile.wire_time(frame.len()));
                    routed.push((PortRef::Vnet(idx), PktBuf::from_vec(frame)));
                    progressed = true;
                }
                if notify {
                    let _ = env.evtchn_notify(qb.port);
                }
            }
        }
        env.on_vcpu(entry_lane);
        for (src, frame) in routed {
            let now = env.now();
            self.offer(now, src, frame);
        }
        // Ingest frames from taps.
        let taps: Vec<Tap> = self.taps.clone();
        for tap in taps {
            loop {
                let frame = tap.inner.lock().to_switch.pop_front();
                let Some(frame) = frame else { break };
                env.consume(self.net_profile.wire_time(frame.len()));
                let now = env.now();
                self.offer(now, PortRef::External, frame);
                progressed = true;
            }
        }
        // Deliver queued frames into posted rx buffers.
        for nic in &mut self.nics {
            let mut notify = false;
            while nic.out_queue.front().is_some() {
                let Some(req) = nic.rx_ring.take_request() else {
                    nic.rx_starved = true;
                    break;
                };
                nic.rx_starved = false;
                let Some(gref) = parse_gref(&req) else {
                    continue;
                };
                let Some(page) = Self::map_cached(env, &mut nic.mapped, gref, true) else {
                    continue;
                };
                let frame = nic.out_queue.pop_front().expect("peeked");
                page.write(|b| b[..frame.len()].copy_from_slice(&frame));
                notify |= nic
                    .rx_ring
                    .push_response(&rx_rsp(gref, frame.len() as u16))
                    .unwrap_or(false);
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(nic.port);
            }
        }
        // Deliver queued frames into posted virtio RX chains, per queue.
        for vnet in &mut self.vnets {
            for qb in vnet.queues.iter_mut() {
                let mut notify = false;
                while let Some(frame) = qb.out_queue.front() {
                    let flen = frame.len();
                    let Some(chain) = qb.rx.pop_avail() else {
                        vnet.rx_starved = true;
                        break;
                    };
                    vnet.rx_starved = false;
                    // The frontend posts single-page writable chains; take
                    // the first device-writable buffer with capacity.
                    let target = chain.bufs.iter().copied().find(|&(addr, len, w)| {
                        let (_, off) = split_addr(addr);
                        w && len as usize >= flen
                            && off + flen <= mirage_hypervisor::PAGE_SIZE
                    });
                    let Some((addr, _, _)) = target else {
                        // Undeliverable chain (too small / read-only):
                        // return it empty and keep the frame queued.
                        notify |= qb.rx.push_used(chain.head, 0);
                        continue;
                    };
                    let (gref, off) = split_addr(addr);
                    let Some(page) = Self::map_cached(env, &mut vnet.mapped, gref, true)
                    else {
                        notify |= qb.rx.push_used(chain.head, 0);
                        continue;
                    };
                    let frame = qb.out_queue.pop_front().expect("peeked");
                    page.write(|b| b[off..off + flen].copy_from_slice(&frame));
                    notify |= qb.rx.push_used(chain.head, flen as u32);
                    progressed = true;
                }
                if notify {
                    let _ = env.evtchn_notify(qb.port);
                }
            }
        }
        progressed
    }

    fn service_blk(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        for blk in &mut self.blks {
            let _ = env.evtchn_consume(blk.port);
            // Accept new requests, scheduling their completion times.
            while let Some(req) = blk.ring.take_request() {
                let Some((op, id, sector, count, gref)) = blkwire::parse_req(&req) else {
                    continue;
                };
                let bytes = count as usize * SECTOR_SIZE;
                let in_range = sector + count as u64 <= blk.disk.sectors();
                if !in_range {
                    // Fail immediately.
                    let notify = blk
                        .ring
                        .push_response(&blkwire::rsp(id, false, gref))
                        .unwrap_or(false);
                    if notify {
                        let _ = env.evtchn_notify(blk.port);
                    }
                    continue;
                }
                let is_read = op == blkwire::OP_READ;
                let faults = blk.disk.profile().faults.unwrap_or_default();
                let mut ok = true;
                if is_read {
                    if DiskFaultPlan::hit(&mut self.disk_rng, faults.read_error_ppm) {
                        // Transient read failure: data stays intact, the
                        // completion reports failure.
                        ok = false;
                        self.stats.lock().blk_read_errors += 1;
                    }
                } else {
                    // Writes capture the data now (the page may be reused).
                    let mut data = vec![0u8; bytes];
                    if let Some(page) =
                        Self::map_cached(env, &mut blk.mapped, gref, false)
                    {
                        page.read(|b| data.copy_from_slice(&b[..bytes]));
                    }
                    if DiskFaultPlan::hit(&mut self.disk_rng, faults.write_error_ppm) {
                        // Transient write failure: nothing persists.
                        ok = false;
                        self.stats.lock().blk_write_errors += 1;
                    } else if DiskFaultPlan::hit(&mut self.disk_rng, faults.torn_write_ppm) {
                        // Torn write: only a sector prefix persists — the
                        // on-disk state a power cut mid-request would leave.
                        ok = false;
                        let keep =
                            self.disk_rng.gen_range(0..count) as usize * SECTOR_SIZE;
                        blk.disk.write(sector, &data[..keep]);
                        self.stats.lock().blk_torn_writes += 1;
                    } else {
                        blk.disk.write(sector, &data);
                    }
                }
                // The device pipelines: occupancy is the transfer time
                // only, while the fixed latency overlaps across queued
                // requests (NCQ on the paper's PCIe SSD).
                let start = blk.busy_until.max(env.now());
                let transfer = blk.disk.profile().transfer_time(bytes);
                let done_at = start + transfer + blk.disk.profile().latency;
                blk.busy_until = start + transfer;
                blk.pending.push(PendingBlk {
                    done_at,
                    gref: GrantRef(gref),
                    id,
                    is_read,
                    ok,
                    sector,
                    count,
                });
                progressed = true;
            }
            // Complete requests whose service time has elapsed.
            let now = env.now();
            let mut notify = false;
            while blk
                .pending
                .peek()
                .map(|p| p.done_at <= now)
                .unwrap_or(false)
            {
                let p = blk.pending.pop().expect("peeked");
                if p.is_read && p.ok {
                    let data = blk.disk.read(p.sector, p.count);
                    if let Some(page) =
                        Self::map_cached(env, &mut blk.mapped, p.gref.0, true)
                    {
                        page.write(|b| b[..data.len()].copy_from_slice(&data));
                    }
                }
                notify |= blk
                    .ring
                    .push_response(&blkwire::rsp(p.id, p.ok, p.gref.0))
                    .unwrap_or(false);
                self.stats.lock().blk_completed += 1;
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(blk.port);
            }
        }
        progressed
    }

    /// Writes a virtio-blk status byte through the grant cache.
    fn write_status(
        env: &mut DomainEnv<'_>,
        mapped: &mut HashMap<u32, SharedPage>,
        addr: u64,
        status: u8,
    ) {
        let (gref, off) = split_addr(addr);
        if off >= mirage_hypervisor::PAGE_SIZE {
            return;
        }
        if let Some(page) = Self::map_cached(env, mapped, gref, true) {
            page.write(|b| b[off] = status);
        }
    }

    /// Services virtio block queues: the same disk, fault plan and
    /// NCQ-pipelined timing as [`Self::service_blk`], over
    /// header/data/status descriptor chains instead of ring slots.
    fn service_vblk(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        for vblk in &mut self.vblks {
            let _ = env.evtchn_consume(vblk.port);
            let mut notify = false;
            // Accept new chains, scheduling their completion times.
            while let Some(chain) = vblk.queue.pop_avail() {
                progressed = true;
                // Expected shape: [header ro][data][status wo, 1 byte].
                let shaped = chain.bufs.len() == 3
                    && !chain.bufs[0].2
                    && chain.bufs[0].1 == 23
                    && chain.bufs[2].2
                    && chain.bufs[2].1 == 1;
                if !shaped {
                    notify |= vblk.queue.push_used(chain.head, 0);
                    continue;
                }
                let (hdr_addr, _, _) = chain.bufs[0];
                let (data_addr, data_len, data_writable) = chain.bufs[1];
                let (status_addr, _, _) = chain.bufs[2];
                let (hgref, hoff) = split_addr(hdr_addr);
                let header = Self::map_cached(env, &mut vblk.mapped, hgref, false)
                    .filter(|_| hoff + 23 <= mirage_hypervisor::PAGE_SIZE)
                    .map(|page| page.read(|b| b[hoff..hoff + 23].to_vec()));
                let Some(header) = header else {
                    notify |= vblk.queue.push_used(chain.head, 0);
                    continue;
                };
                let Some((op, id, sector, count, _gref)) = blkwire::parse_req(&header)
                else {
                    Self::write_status(env, &mut vblk.mapped, status_addr, STATUS_IOERR);
                    notify |= vblk.queue.push_used(chain.head, 1);
                    continue;
                };
                let bytes = count as usize * SECTOR_SIZE;
                let (_, doff) = split_addr(data_addr);
                let is_read = op == blkwire::OP_READ;
                let in_range = sector + count as u64 <= vblk.disk.sectors();
                let data_fits = bytes <= data_len as usize
                    && doff + bytes <= mirage_hypervisor::PAGE_SIZE;
                if !in_range || !data_fits || (is_read && !data_writable) {
                    Self::write_status(env, &mut vblk.mapped, status_addr, STATUS_IOERR);
                    notify |= vblk.queue.push_used(chain.head, 1);
                    continue;
                }
                let faults = vblk.disk.profile().faults.unwrap_or_default();
                let mut ok = true;
                if is_read {
                    if DiskFaultPlan::hit(&mut self.disk_rng, faults.read_error_ppm) {
                        ok = false;
                        self.stats.lock().blk_read_errors += 1;
                    }
                } else {
                    // Writes capture the data now (the page may be reused).
                    let mut data = vec![0u8; bytes];
                    let (dgref, doff) = split_addr(data_addr);
                    if let Some(page) =
                        Self::map_cached(env, &mut vblk.mapped, dgref, false)
                    {
                        page.read(|b| data.copy_from_slice(&b[doff..doff + bytes]));
                    }
                    if DiskFaultPlan::hit(&mut self.disk_rng, faults.write_error_ppm) {
                        ok = false;
                        self.stats.lock().blk_write_errors += 1;
                    } else if DiskFaultPlan::hit(&mut self.disk_rng, faults.torn_write_ppm) {
                        ok = false;
                        let keep =
                            self.disk_rng.gen_range(0..count) as usize * SECTOR_SIZE;
                        vblk.disk.write(sector, &data[..keep]);
                        self.stats.lock().blk_torn_writes += 1;
                    } else {
                        vblk.disk.write(sector, &data);
                    }
                }
                // Same NCQ pipelining as the Xen path: occupancy is the
                // transfer time, fixed latency overlaps queued requests.
                let start = vblk.busy_until.max(env.now());
                let transfer = vblk.disk.profile().transfer_time(bytes);
                let done_at = start + transfer + vblk.disk.profile().latency;
                vblk.busy_until = start + transfer;
                vblk.pending.push(PendingVBlk {
                    done_at,
                    head: chain.head,
                    id,
                    is_read,
                    ok,
                    sector,
                    count,
                    data_addr,
                    status_addr,
                });
            }
            // Complete chains whose service time has elapsed.
            let now = env.now();
            while vblk
                .pending
                .peek()
                .map(|p| p.done_at <= now)
                .unwrap_or(false)
            {
                let p = vblk.pending.pop().expect("peeked");
                let mut written = 1u32; // the status byte
                if p.is_read && p.ok {
                    let data = vblk.disk.read(p.sector, p.count);
                    let (gref, off) = split_addr(p.data_addr);
                    if let Some(page) =
                        Self::map_cached(env, &mut vblk.mapped, gref, true)
                    {
                        page.write(|b| b[off..off + data.len()].copy_from_slice(&data));
                    }
                    written += data.len() as u32;
                }
                let status = if p.ok { STATUS_OK } else { STATUS_IOERR };
                Self::write_status(env, &mut vblk.mapped, p.status_addr, status);
                notify |= vblk.queue.push_used(p.head, written);
                self.stats.lock().blk_completed += 1;
                progressed = true;
            }
            if notify {
                let _ = env.evtchn_notify(vblk.port);
            }
        }
        progressed
    }

    fn next_deadline(&self) -> Option<Time> {
        let blk = self
            .blks
            .iter()
            .filter_map(|b| b.pending.peek().map(|p| p.done_at))
            .min();
        let vblk = self
            .vblks
            .iter()
            .filter_map(|b| b.pending.peek().map(|p| p.done_at))
            .min();
        let net = self.delayed.peek().map(|d| d.release_at);
        [blk, vblk, net].into_iter().flatten().min()
    }
}

impl Guest for DriverDomain {
    fn step(&mut self, env: &mut DomainEnv<'_>) -> Step {
        if !self.registered {
            self.xs.register_watcher(env.domid());
            self.xs
                .write(env, "backend-domid", &env.domid().0.to_string());
            self.registered = true;
        }
        loop {
            let mut progressed = self.discover(env);
            progressed |= self.service_net(env);
            progressed |= self.service_blk(env);
            progressed |= self.service_vblk(env);
            // Arm request notifications before blocking; any race means
            // another pass instead of a sleep.
            for nic in &mut self.nics {
                progressed |= nic.tx_ring.enable_request_notifications();
                if !nic.out_queue.is_empty() {
                    progressed |= nic.rx_ring.enable_request_notifications();
                }
            }
            for vnet in &mut self.vnets {
                for qb in vnet.queues.iter_mut() {
                    progressed |= qb.tx.enable_avail_notifications();
                    if !qb.out_queue.is_empty() {
                        progressed |= qb.rx.enable_avail_notifications();
                    }
                }
            }
            for blk in &mut self.blks {
                progressed |= blk.ring.enable_request_notifications();
            }
            for vblk in &mut self.vblks {
                progressed |= vblk.queue.enable_avail_notifications();
            }
            if !progressed {
                break;
            }
        }
        let ports: Vec<Port> = self
            .nics
            .iter()
            .map(|n| n.port)
            .chain(self.vnets.iter().flat_map(|v| v.queues.iter().map(|q| q.port)))
            .chain(self.blks.iter().map(|b| b.port))
            .chain(self.vblks.iter().map(|b| b.port))
            .collect();
        Step::Yield(Wake {
            deadline: self.next_deadline(),
            ports,
        })
    }
}

impl std::fmt::Debug for DriverDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverDomain")
            .field("nics", &self.nics.len())
            .field("vnets", &self.vnets.len())
            .field("blks", &self.blks.len())
            .field("vblks", &self.vblks.len())
            .field("taps", &self.taps.len())
            .finish()
    }
}

// Silence dead-code warnings on fields kept for debugging/telemetry.
impl NetBackendInst {
    #[allow(dead_code)]
    fn describe(&self) -> (&str, DomainId, u64) {
        (&self.base, self.frontend, self.out_drops)
    }
}

impl BlkBackendInst {
    #[allow(dead_code)]
    fn describe(&self) -> (&str, DomainId) {
        (&self.base, self.frontend)
    }
}

impl VnetBackendInst {
    #[allow(dead_code)]
    fn describe(&self) -> (&str, DomainId, u64) {
        (&self.base, self.frontend, self.out_drops)
    }
}

impl VblkBackendInst {
    #[allow(dead_code)]
    fn describe(&self) -> (&str, DomainId) {
        (&self.base, self.frontend)
    }
}
