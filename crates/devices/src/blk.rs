//! Blkfront and the simulated disk (paper §3.4, §4.1.3).
//!
//! "Mirage block devices share the same Ring abstraction as network
//! devices, using the same I/O pages to provide efficient block-level
//! access, with filesystems and caching provided as OCaml libraries"
//! (§3.5.2). The frontend here is deliberately minimal: sector-addressed
//! reads and writes, one page per request, all writes direct — "the only
//! built-in policy being that all writes are guaranteed to be direct".
//!
//! The backend's storage is a [`SimulatedDisk`] parameterised by a
//! [`DiskProfile`]; the default profile models the paper's "fast
//! PCI-express SSD storage device" from Figure 9.

use std::collections::HashMap;
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::{GrantRef, SharedPage};
use mirage_hypervisor::{DomainEnv, DomainId, Dur};
use mirage_ring::FrontRing;
use mirage_runtime::channel::{self, Receiver, Sender};
use mirage_runtime::{DeviceService, Runtime};

use crate::xenstore::Xenstore;

/// Bytes per disk sector.
pub const SECTOR_SIZE: usize = 512;
/// Sectors per request (one 4 KiB page).
pub const MAX_SECTORS_PER_REQ: u16 = 8;
/// Data pages in the frontend pool (bounds queue depth).
pub const BLK_BUFFERS: usize = 32;

/// Latency/bandwidth model of the physical device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProfile {
    /// Fixed per-request service latency (seek/flash overhead + DMA setup).
    pub latency: Dur,
    /// Sustained transfer bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Seeded fault plan applied by the backend (`None`: a perfect device).
    pub faults: Option<crate::netem::DiskFaultPlan>,
}

impl DiskProfile {
    /// The paper's Figure 9 device: a PCIe SSD peaking near 1.6 GB/s.
    pub fn pcie_ssd() -> DiskProfile {
        DiskProfile {
            latency: Dur::micros(18),
            bandwidth_bps: 13_600_000_000, // 1.7 GB/s
            faults: None,
        }
    }

    /// The same device with a fault plan attached.
    pub fn with_faults(mut self, faults: crate::netem::DiskFaultPlan) -> DiskProfile {
        self.faults = Some(faults);
        self
    }

    /// Wire/flash transfer time for `bytes` (the device-occupancy part).
    pub fn transfer_time(&self, bytes: usize) -> Dur {
        let transfer_ns = (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps;
        Dur::nanos(transfer_ns)
    }

    /// End-to-end service time for one isolated request of `bytes`.
    pub fn service_time(&self, bytes: usize) -> Dur {
        self.latency + self.transfer_time(bytes)
    }
}

/// In-memory sector store with the timing profile attached.
#[derive(Debug)]
pub struct SimulatedDisk {
    profile: DiskProfile,
    sectors: u64,
    data: HashMap<u64, Box<[u8; SECTOR_SIZE]>>,
}

impl SimulatedDisk {
    /// An empty (all-zero) disk of `sectors` sectors.
    pub fn new(profile: DiskProfile, sectors: u64) -> SimulatedDisk {
        SimulatedDisk {
            profile,
            sectors,
            data: HashMap::new(),
        }
    }

    /// Device size in sectors.
    pub fn sectors(&self) -> u64 {
        self.sectors
    }

    /// The timing profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Reads `count` sectors starting at `sector`.
    ///
    /// # Panics
    ///
    /// Panics if the range runs off the end of the disk (the backend
    /// validates before calling).
    pub fn read(&self, sector: u64, count: u16) -> Vec<u8> {
        assert!(sector + count as u64 <= self.sectors, "read past end");
        let mut out = vec![0u8; count as usize * SECTOR_SIZE];
        for i in 0..count as u64 {
            if let Some(block) = self.data.get(&(sector + i)) {
                let off = i as usize * SECTOR_SIZE;
                out[off..off + SECTOR_SIZE].copy_from_slice(&block[..]);
            }
        }
        out
    }

    /// Writes whole sectors starting at `sector`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not sector-aligned or runs off the disk.
    pub fn write(&mut self, sector: u64, data: &[u8]) {
        assert_eq!(data.len() % SECTOR_SIZE, 0, "unaligned write");
        let count = (data.len() / SECTOR_SIZE) as u64;
        assert!(sector + count <= self.sectors, "write past end");
        for i in 0..count {
            let off = i as usize * SECTOR_SIZE;
            let mut block = Box::new([0u8; SECTOR_SIZE]);
            block.copy_from_slice(&data[off..off + SECTOR_SIZE]);
            self.data.insert(sector + i, block);
        }
    }

    /// Sectors that have ever been written (sparse occupancy).
    pub fn written_sectors(&self) -> usize {
        self.data.len()
    }
}

/// Block operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkOp {
    /// Read sectors from the device.
    Read,
    /// Write sectors to the device (always direct, §3.5.2).
    Write,
}

/// A request submitted by the storage stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlkRequest {
    /// Caller-chosen correlation id.
    pub id: u64,
    /// Operation.
    pub op: BlkOp,
    /// Start sector.
    pub sector: u64,
    /// Sector count (reads) — at most [`MAX_SECTORS_PER_REQ`].
    pub count: u16,
    /// Payload for writes (`count * SECTOR_SIZE` bytes).
    pub data: Option<Vec<u8>>,
}

/// A completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlkCompletion {
    /// Correlation id from the request.
    pub id: u64,
    /// Whether the backend accepted and executed the request.
    pub ok: bool,
    /// Read payload.
    pub data: Option<Vec<u8>>,
}

/// Stack-facing handle: submit requests, await completions.
pub struct BlkHandle {
    /// Request queue into the driver.
    pub submit: Sender<BlkRequest>,
    /// Completion stream from the driver.
    pub complete: Receiver<BlkCompletion>,
    /// Device size in sectors.
    pub sectors: u64,
}

impl std::fmt::Debug for BlkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlkHandle({} sectors)", self.sectors)
    }
}

pub(crate) mod wire {
    //! Block descriptor encoding (rides in ring slots).

    pub const OP_READ: u8 = 0;
    pub const OP_WRITE: u8 = 1;

    pub fn req(op: u8, id: u64, sector: u64, count: u16, gref: u32) -> Vec<u8> {
        let mut d = Vec::with_capacity(23);
        d.push(op);
        d.extend_from_slice(&id.to_le_bytes());
        d.extend_from_slice(&sector.to_le_bytes());
        d.extend_from_slice(&count.to_le_bytes());
        d.extend_from_slice(&gref.to_le_bytes());
        d
    }

    pub fn parse_req(d: &[u8]) -> Option<(u8, u64, u64, u16, u32)> {
        if d.len() != 23 {
            return None;
        }
        Some((
            d[0],
            u64::from_le_bytes(d[1..9].try_into().ok()?),
            u64::from_le_bytes(d[9..17].try_into().ok()?),
            u16::from_le_bytes(d[17..19].try_into().ok()?),
            u32::from_le_bytes(d[19..23].try_into().ok()?),
        ))
    }

    pub fn rsp(id: u64, ok: bool, gref: u32) -> Vec<u8> {
        let mut d = Vec::with_capacity(13);
        d.extend_from_slice(&id.to_le_bytes());
        d.push(ok as u8);
        d.extend_from_slice(&gref.to_le_bytes());
        d
    }

    pub fn parse_rsp(d: &[u8]) -> Option<(u64, bool, u32)> {
        if d.len() != 13 {
            return None;
        }
        Some((
            u64::from_le_bytes(d[0..8].try_into().ok()?),
            d[8] != 0,
            u32::from_le_bytes(d[9..13].try_into().ok()?),
        ))
    }
}

enum BlkFrontState {
    Init,
    WaitPort,
    Connected,
}

struct Inflight {
    id: u64,
    op: BlkOp,
    gref: GrantRef,
    page: SharedPage,
    read_bytes: usize,
}

/// The blkfront device driver ([`DeviceService`]).
pub struct Blkfront {
    xs: Xenstore,
    name: String,
    disk_sectors: u64,
    state: BlkFrontState,
    registered_watch: bool,
    ring: Option<FrontRing>,
    port: Option<Port>,
    backend: Option<DomainId>,
    free_pages: Vec<(GrantRef, SharedPage)>,
    inflight: HashMap<u32, Inflight>,
    from_stack: Receiver<BlkRequest>,
    to_stack: Sender<BlkCompletion>,
    backlog: std::collections::VecDeque<BlkRequest>,
    requests_done: Arc<Mutex<u64>>,
}

impl Blkfront {
    /// Creates the driver and its stack-facing handle, requesting a virtual
    /// disk of `disk_sectors` sectors from the backend.
    pub fn new(
        xs: Xenstore,
        name: impl Into<String>,
        disk_sectors: u64,
    ) -> (Blkfront, BlkHandle) {
        let (submit_tx, submit_rx) = channel::channel();
        let (comp_tx, comp_rx) = channel::channel();
        let front = Blkfront {
            xs,
            name: name.into(),
            disk_sectors,
            state: BlkFrontState::Init,
            registered_watch: false,
            ring: None,
            port: None,
            backend: None,
            free_pages: Vec::new(),
            inflight: HashMap::new(),
            from_stack: submit_rx,
            to_stack: comp_tx,
            backlog: std::collections::VecDeque::new(),
            requests_done: Arc::new(Mutex::new(0)),
        };
        let handle = BlkHandle {
            submit: submit_tx,
            complete: comp_rx,
            sectors: disk_sectors,
        };
        (front, handle)
    }

    fn base(&self) -> String {
        format!("device/blk/{}", self.name)
    }

    fn step_init(&mut self, env: &mut DomainEnv<'_>) -> bool {
        if !self.registered_watch {
            self.xs.register_watcher(env.domid());
            self.registered_watch = true;
        }
        let Some(backend) = self
            .xs
            .read(env, "backend-domid")
            .and_then(|s| s.parse().ok())
            .map(DomainId)
        else {
            return false;
        };
        self.backend = Some(backend);
        let base = self.base();
        let ring_page = SharedPage::new();
        let gref = env.grant(backend, ring_page.clone(), true);
        self.ring = Some(FrontRing::attach(ring_page));
        let domid = env.domid().0.to_string();
        self.xs.write(env, &format!("{base}/frontend-domid"), &domid);
        self.xs.write(env, &format!("{base}/ring"), &gref.0.to_string());
        self.xs
            .write(env, &format!("{base}/sectors"), &self.disk_sectors.to_string());
        self.xs.write(env, &format!("{base}/state"), "initialising");
        self.state = BlkFrontState::WaitPort;
        true
    }

    fn step_wait_port(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let base = self.base();
        let Some(port) = self
            .xs
            .read(env, &format!("{base}/event-port"))
            .and_then(|s| s.parse().ok())
            .map(Port)
        else {
            return false;
        };
        let backend = self.backend.expect("set in Init");
        let local = env.evtchn_bind(backend, port).expect("backend allocated");
        self.port = Some(local);
        for _ in 0..BLK_BUFFERS {
            let page = SharedPage::new();
            let gref = env.grant(backend, page.clone(), true);
            self.free_pages.push((gref, page));
        }
        self.xs.write(env, &format!("{base}/state"), "connected");
        env.observe(&format!("blk-connected:{}", self.name));
        self.state = BlkFrontState::Connected;
        true
    }

    fn step_connected(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        let port = self.port.expect("connected");
        let _ = env.evtchn_consume(port);

        // Completions.
        let mut completions = Vec::new();
        if let Some(ring) = self.ring.as_mut() {
            while let Some(rsp) = ring.take_response() {
                if let Some((_id, ok, gref)) = wire::parse_rsp(&rsp) {
                    if let Some(inflight) = self.inflight.remove(&gref) {
                        completions.push((inflight, ok));
                    }
                }
            }
        }
        for (inflight, ok) in completions {
            let data = if ok && inflight.op == BlkOp::Read {
                let mut buf = vec![0u8; inflight.read_bytes];
                inflight.page.read(|b| buf.copy_from_slice(&b[..inflight.read_bytes]));
                Some(buf)
            } else {
                None
            };
            let _ = self.to_stack.send(BlkCompletion {
                id: inflight.id,
                ok,
                data,
            });
            self.free_pages.push((inflight.gref, inflight.page));
            *self.requests_done.lock() += 1;
            progressed = true;
        }

        // Submissions.
        while let Some(req) = self.from_stack.try_recv() {
            self.backlog.push_back(req);
        }
        let mut notify = false;
        while let Some(req) = self.backlog.front() {
            if req.count > MAX_SECTORS_PER_REQ || req.count == 0 {
                let req = self.backlog.pop_front().expect("peeked");
                let _ = self.to_stack.send(BlkCompletion {
                    id: req.id,
                    ok: false,
                    data: None,
                });
                continue;
            }
            let Some((gref, page)) = self.free_pages.pop() else {
                break;
            };
            let ring = self.ring.as_mut().expect("connected");
            if ring.free_slots() == 0 {
                self.free_pages.push((gref, page));
                break;
            }
            let req = self.backlog.pop_front().expect("peeked");
            let bytes = req.count as usize * SECTOR_SIZE;
            let op = match req.op {
                BlkOp::Read => wire::OP_READ,
                BlkOp::Write => {
                    let data = req.data.as_deref().unwrap_or(&[]);
                    let n = data.len().min(bytes);
                    page.write(|b| b[..n].copy_from_slice(&data[..n]));
                    // Direct write: one copy into the I/O page.
                    let c = env.costs().copy(n);
                    env.consume(c);
                    wire::OP_WRITE
                }
            };
            let desc = wire::req(op, req.id, req.sector, req.count, gref.0);
            match ring.push_request(&desc) {
                Ok(n) => {
                    notify |= n;
                    self.inflight.insert(
                        gref.0,
                        Inflight {
                            id: req.id,
                            op: req.op,
                            gref,
                            page,
                            read_bytes: bytes,
                        },
                    );
                    progressed = true;
                }
                Err(_) => {
                    self.free_pages.push((gref, page));
                    self.backlog.push_front(req);
                    break;
                }
            }
        }
        if notify {
            let _ = env.evtchn_notify(port);
        }
        if let Some(ring) = self.ring.as_mut() {
            progressed |= ring.enable_response_notifications();
        }
        progressed
    }
}

impl DeviceService for Blkfront {
    fn service(&mut self, env: &mut DomainEnv<'_>, _rt: &Runtime) -> bool {
        match self.state {
            BlkFrontState::Init => self.step_init(env),
            BlkFrontState::WaitPort => {
                let p = self.step_wait_port(env);
                if matches!(self.state, BlkFrontState::Connected) {
                    self.step_connected(env) || p
                } else {
                    p
                }
            }
            BlkFrontState::Connected => self.step_connected(env),
        }
    }

    fn watch_ports(&self) -> Vec<Port> {
        self.port.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_round_trips_sectors() {
        let mut disk = SimulatedDisk::new(DiskProfile::pcie_ssd(), 1024);
        let data = vec![0xAB; 2 * SECTOR_SIZE];
        disk.write(10, &data);
        assert_eq!(disk.read(10, 2), data);
        assert_eq!(disk.read(12, 1), vec![0u8; SECTOR_SIZE], "unwritten is zero");
        assert_eq!(disk.written_sectors(), 2);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn disk_bounds_checked() {
        let disk = SimulatedDisk::new(DiskProfile::pcie_ssd(), 8);
        let _ = disk.read(7, 2);
    }

    #[test]
    fn service_time_saturates_at_bandwidth() {
        let p = DiskProfile::pcie_ssd();
        let small = p.service_time(1024);
        let large = p.service_time(4 * 1024 * 1024);
        // Small requests are latency-dominated; large, bandwidth-dominated.
        assert!(small < Dur::micros(25));
        let large_secs = large.as_secs_f64();
        let implied_bw = (4.0 * 1024.0 * 1024.0 * 8.0) / large_secs;
        assert!(
            (implied_bw - p.bandwidth_bps as f64).abs() < 0.05 * p.bandwidth_bps as f64,
            "large transfers run at device bandwidth"
        );
    }

    #[test]
    fn wire_round_trip() {
        let d = wire::req(wire::OP_WRITE, 42, 1000, 8, 7);
        assert_eq!(wire::parse_req(&d), Some((wire::OP_WRITE, 42, 1000, 8, 7)));
        let r = wire::rsp(42, true, 7);
        assert_eq!(wire::parse_rsp(&r), Some((42, true, 7)));
        assert_eq!(wire::parse_req(&r), None, "length-discriminated");
    }
}
