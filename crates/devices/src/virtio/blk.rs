//! VirtioBlk — the guest-side block frontend over a split virtqueue.
//!
//! The virtio twin of [`crate::blk::Blkfront`]: the same stack-facing
//! [`BlkHandle`] contract and the same 23-byte request header on the
//! wire, but carried in the classic virtio-blk three-descriptor chain —
//!
//! 1. header (driver-written, device-read): op/id/sector/count;
//! 2. data (device-written for reads, device-read for writes): up to one
//!    page of sectors;
//! 3. status (device-written): one byte, `0` for success.
//!
//! The header and status byte share one page (offsets 0 and
//! [`STATUS_OFF`]), so each request slot costs two granted pages. The
//! backend half lives in [`crate::netback`] and services both ABIs
//! against the same [`SimulatedDisk`](crate::blk::SimulatedDisk), fault
//! plan and timing model.

use std::collections::{HashMap, VecDeque};

use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::{GrantRef, SharedPage};
use mirage_hypervisor::{DomainEnv, DomainId};
use mirage_runtime::channel::{self, Receiver, Sender};
use mirage_runtime::{DeviceService, Runtime};

use super::virtqueue::{buf_addr, ChainBuf, QueuePages, SplitQueue};
use crate::blk::{
    wire as blkwire, BlkCompletion, BlkHandle, BlkOp, BlkRequest, BLK_BUFFERS,
    MAX_SECTORS_PER_REQ, SECTOR_SIZE,
};
use crate::xenstore::Xenstore;

/// Offset of the one-byte status field within the header page.
pub const STATUS_OFF: usize = 2048;
/// Request status: success.
pub const STATUS_OK: u8 = 0;
/// Request status: device rejected or failed the request.
pub const STATUS_IOERR: u8 = 1;

enum VblkState {
    Init,
    WaitPort,
    Connected,
}

/// One request slot: a header/status page plus a data page.
struct Slot {
    hdr_gref: GrantRef,
    hdr_page: SharedPage,
    data_gref: GrantRef,
    data_page: SharedPage,
}

struct Inflight {
    id: u64,
    op: BlkOp,
    slot: Slot,
    read_bytes: usize,
}

/// The virtio block frontend; a [`DeviceService`] created through
/// [`Backend::blk`](crate::driver::Backend::blk).
pub struct VirtioBlk {
    xs: Xenstore,
    name: String,
    disk_sectors: u64,
    state: VblkState,
    registered_watch: bool,
    backend: Option<DomainId>,
    staged: Option<QueuePages>,
    queue: Option<SplitQueue>,
    port: Option<Port>,
    free_slots: Vec<Slot>,
    inflight: HashMap<u16, Inflight>,
    from_stack: Receiver<BlkRequest>,
    to_stack: Sender<BlkCompletion>,
    backlog: VecDeque<BlkRequest>,
}

impl VirtioBlk {
    /// Creates the driver and its stack-facing handle, requesting a
    /// virtual disk of `disk_sectors` sectors from the backend.
    pub fn new(
        xs: Xenstore,
        name: impl Into<String>,
        disk_sectors: u64,
    ) -> (VirtioBlk, BlkHandle) {
        let (submit_tx, submit_rx) = channel::channel();
        let (comp_tx, comp_rx) = channel::channel();
        let front = VirtioBlk {
            xs,
            name: name.into(),
            disk_sectors,
            state: VblkState::Init,
            registered_watch: false,
            backend: None,
            staged: None,
            queue: None,
            port: None,
            free_slots: Vec::new(),
            inflight: HashMap::new(),
            from_stack: submit_rx,
            to_stack: comp_tx,
            backlog: VecDeque::new(),
        };
        let handle = BlkHandle {
            submit: submit_tx,
            complete: comp_rx,
            sectors: disk_sectors,
        };
        (front, handle)
    }

    fn base(&self) -> String {
        format!("device/vblk/{}", self.name)
    }

    fn step_init(&mut self, env: &mut DomainEnv<'_>) -> bool {
        if !self.registered_watch {
            self.xs.register_watcher(env.domid());
            self.registered_watch = true;
        }
        let Some(backend) = self
            .xs
            .read(env, "backend-domid")
            .and_then(|s| s.parse().ok())
            .map(DomainId)
        else {
            return false;
        };
        self.backend = Some(backend);
        let base = self.base();
        let pages = QueuePages::new();
        let desc = env.grant(backend, pages.desc.clone(), false);
        let avail = env.grant(backend, pages.avail.clone(), false);
        let used = env.grant(backend, pages.used.clone(), true);
        for (area, gref) in [("desc", desc), ("avail", avail), ("used", used)] {
            self.xs
                .write(env, &format!("{base}/{area}"), &gref.0.to_string());
        }
        self.staged = Some(pages);
        let domid = env.domid().0.to_string();
        self.xs.write(env, &format!("{base}/frontend-domid"), &domid);
        self.xs
            .write(env, &format!("{base}/sectors"), &self.disk_sectors.to_string());
        self.xs.write(env, &format!("{base}/state"), "initialising");
        self.state = VblkState::WaitPort;
        true
    }

    fn step_wait_port(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let base = self.base();
        let Some(port) = self
            .xs
            .read(env, &format!("{base}/event-port"))
            .and_then(|s| s.parse().ok())
            .map(Port)
        else {
            return false;
        };
        let backend = self.backend.expect("set in Init");
        let local = env.evtchn_bind(backend, port).expect("backend allocated");
        self.port = Some(local);
        self.queue = Some(SplitQueue::new(self.staged.take().expect("staged in Init")));
        for _ in 0..BLK_BUFFERS {
            // Header page is device-writable for the status byte; the
            // data page is device-writable for read payloads.
            let hdr_page = SharedPage::new();
            let hdr_gref = env.grant(backend, hdr_page.clone(), true);
            let data_page = SharedPage::new();
            let data_gref = env.grant(backend, data_page.clone(), true);
            self.free_slots.push(Slot {
                hdr_gref,
                hdr_page,
                data_gref,
                data_page,
            });
        }
        self.xs.write(env, &format!("{base}/state"), "connected");
        env.observe(&format!("vblk-connected:{}", self.name));
        self.state = VblkState::Connected;
        true
    }

    fn step_connected(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        let port = self.port.expect("connected");
        let _ = env.evtchn_consume(port);
        let queue = self.queue.as_mut().expect("connected");

        // Completions: the device filled the status byte (and, for reads,
        // the data page) before returning the chain.
        while let Some((head, _len)) = queue.take_used() {
            let Some(inflight) = self.inflight.remove(&head) else {
                continue;
            };
            let status = inflight.slot.hdr_page.read(|b| b[STATUS_OFF]);
            let ok = status == STATUS_OK;
            let data = if ok && inflight.op == BlkOp::Read {
                let mut buf = vec![0u8; inflight.read_bytes];
                inflight
                    .slot
                    .data_page
                    .read(|b| buf.copy_from_slice(&b[..inflight.read_bytes]));
                Some(buf)
            } else {
                None
            };
            let _ = self.to_stack.send(BlkCompletion {
                id: inflight.id,
                ok,
                data,
            });
            self.free_slots.push(inflight.slot);
            progressed = true;
        }

        // Submissions: three-descriptor chains, one doorbell per pass.
        while let Some(req) = self.from_stack.try_recv() {
            self.backlog.push_back(req);
        }
        let mut notify = false;
        while let Some(req) = self.backlog.front() {
            if req.count > MAX_SECTORS_PER_REQ || req.count == 0 {
                let req = self.backlog.pop_front().expect("peeked");
                let _ = self.to_stack.send(BlkCompletion {
                    id: req.id,
                    ok: false,
                    data: None,
                });
                continue;
            }
            if queue.free_descriptors() < 3 {
                break;
            }
            let Some(slot) = self.free_slots.pop() else {
                break;
            };
            let req = self.backlog.pop_front().expect("peeked");
            let bytes = req.count as usize * SECTOR_SIZE;
            let (op, is_read) = match req.op {
                BlkOp::Read => (blkwire::OP_READ, true),
                BlkOp::Write => {
                    let data = req.data.as_deref().unwrap_or(&[]);
                    let n = data.len().min(bytes);
                    slot.data_page.write(|b| b[..n].copy_from_slice(&data[..n]));
                    // Direct write: one copy into the I/O page.
                    let c = env.costs().copy(n);
                    env.consume(c);
                    (blkwire::OP_WRITE, false)
                }
            };
            let header = blkwire::req(op, req.id, req.sector, req.count, slot.data_gref.0);
            slot.hdr_page.write(|b| {
                b[..header.len()].copy_from_slice(&header);
                b[STATUS_OFF] = STATUS_IOERR; // the device must overwrite it
            });
            let (head, n) = queue
                .add_chain(&[
                    ChainBuf {
                        addr: buf_addr(slot.hdr_gref.0, 0),
                        len: header.len() as u32,
                        device_writes: false,
                    },
                    ChainBuf {
                        addr: buf_addr(slot.data_gref.0, 0),
                        len: bytes as u32,
                        device_writes: is_read,
                    },
                    ChainBuf {
                        addr: buf_addr(slot.hdr_gref.0, STATUS_OFF),
                        len: 1,
                        device_writes: true,
                    },
                ])
                .expect("free_descriptors checked");
            notify |= n;
            self.inflight.insert(
                head,
                Inflight {
                    id: req.id,
                    op: req.op,
                    slot,
                    read_bytes: bytes,
                },
            );
            progressed = true;
        }
        if notify {
            let _ = env.evtchn_notify(port);
        }
        progressed |= queue.enable_used_notifications();
        progressed
    }
}

impl DeviceService for VirtioBlk {
    fn service(&mut self, env: &mut DomainEnv<'_>, _rt: &Runtime) -> bool {
        match self.state {
            VblkState::Init => self.step_init(env),
            VblkState::WaitPort => {
                let p = self.step_wait_port(env);
                if matches!(self.state, VblkState::Connected) {
                    self.step_connected(env) || p
                } else {
                    p
                }
            }
            VblkState::Connected => self.step_connected(env),
        }
    }

    fn watch_ports(&self) -> Vec<Port> {
        self.port.into_iter().collect()
    }
}
