//! Virtio-style split-virtqueue transport — the second device ABI.
//!
//! The paper's device claims (grants, shared-memory rings, bounded copy
//! counts, §3.4) are about mechanisms, not about the Xen ring layout
//! specifically. This module provides the same frontends over virtio 1.0
//! split virtqueues — descriptor table + avail/used rings with EVENT_IDX
//! doorbell suppression — so the identical appliance can run over either
//! ABI and the conformance suite can diff them workload-by-workload:
//!
//! * [`virtqueue`] — the ring primitive: [`virtqueue::SplitQueue`]
//!   (driver half) and [`virtqueue::DeviceQueue`] (device half);
//! * [`net::VirtioNet`] — the Ethernet frontend: one TX/RX virtqueue
//!   pair per stack queue (and therefore per vCPU), per-queue event
//!   channels with vCPU affinity, batched doorbells;
//! * [`blk::VirtioBlk`] — the block frontend: three-descriptor
//!   header/data/status chains, the classic virtio-blk shape.
//!
//! Backend halves live with the Xen ones in [`crate::netback`]: the
//! driver domain's switch and disk service frames and requests from both
//! ABIs through the same forwarding, conditioning and timing paths.
//!
//! Selection is a [`crate::driver::Backend`] value at device-creation
//! time; consumers program against the [`crate::driver::NetDriver`] /
//! [`crate::driver::BlkDriver`] traits and never name an ABI.

pub mod blk;
pub mod net;
pub mod virtqueue;

pub use blk::VirtioBlk;
pub use net::VirtioNet;
pub use virtqueue::{DeviceQueue, QueuePages, SplitQueue, QUEUE_SIZE};
