//! VirtioNet — the guest-side Ethernet frontend over split virtqueues.
//!
//! The virtio twin of [`crate::netfront::Netfront`]: the same stack-facing
//! [`NetHandle`] contract (whole Ethernet frames as [`PktBuf`] views, one
//! handle per queue), the same [`CopyDiscipline`] pricing, the same
//! xenstore discovery dance — but the transport underneath is one TX/RX
//! [`SplitQueue`](super::virtqueue::SplitQueue) pair *per queue*, each
//! pair with its own event channel steered to the owning vCPU
//! (`EVTCHNOP_bind_vcpu`). Where the Xen path multiplexes every queue
//! over one ring pair and one channel, the virtio path is multi-queue all
//! the way down: queue q's descriptors, doorbells and interrupts never
//! touch another core's cache line.
//!
//! Doorbells are batched: a service pass publishes every frame it can,
//! then rings each queue's channel at most once — and only if the
//! device's `avail_event` mark asks for it. The per-interface
//! [`NetifStats::doorbells`] counter is the observable the suppression
//! regression test pins: O(bursts), not O(frames).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_cstruct::PktBuf;
use mirage_hypervisor::event::Port;
use mirage_hypervisor::grant::{GrantRef, SharedPage};
use mirage_hypervisor::{DomainEnv, DomainId};
use mirage_runtime::channel::{self, Receiver, Sender};
use mirage_runtime::{DeviceService, Runtime};

use super::virtqueue::{buf_addr, ChainBuf, QueuePages, SplitQueue};
use crate::netfront::{CopyDiscipline, NetHandle, NetifStats, MAX_FRAME, TX_BACKLOG_CAP};
use crate::xenstore::Xenstore;

/// Receive buffer chains posted per RX virtqueue.
pub const VNET_RX_BUFFERS: usize = 24;
/// Transmit pages pooled per TX virtqueue.
pub const VNET_TX_BUFFERS: usize = 24;

enum VnetState {
    /// Allocate queue areas, grant them, advertise in xenstore.
    Init,
    /// Waiting for the backend to publish per-queue event ports.
    WaitPort,
    /// Data plane running.
    Connected,
}

/// One TX/RX virtqueue pair with its event channel.
struct QueuePair {
    port: Port,
    tx: SplitQueue,
    rx: SplitQueue,
    /// TX data pages not currently owned by the device.
    tx_free: Vec<(GrantRef, SharedPage)>,
    /// TX pages in flight, keyed by chain head.
    tx_inflight: HashMap<u16, (GrantRef, SharedPage)>,
    /// Posted RX buffers, keyed by chain head.
    rx_bufs: HashMap<u16, (GrantRef, SharedPage)>,
    /// Frames awaiting a free TX descriptor, FIFO per queue.
    backlog: VecDeque<PktBuf>,
}

/// The virtio network frontend; a [`DeviceService`] like
/// [`Netfront`](crate::netfront::Netfront), created through
/// [`Backend::net`](crate::driver::Backend::net) rather than directly.
pub struct VirtioNet {
    xs: Xenstore,
    name: String,
    mac: [u8; 6],
    discipline: CopyDiscipline,
    state: VnetState,
    registered_watch: bool,
    backend: Option<DomainId>,
    /// Queue areas allocated in Init, consumed when the pairs connect.
    staged: Vec<(QueuePages, QueuePages)>,
    pairs: Vec<QueuePair>,
    from_stack: Vec<Receiver<PktBuf>>,
    to_stack: Vec<Sender<PktBuf>>,
    stats: Arc<Mutex<NetifStats>>,
    /// Base vCPU for per-queue channel affinity: queue q is steered to
    /// `(service_vcpu + q) % vcpus`.
    service_vcpu: usize,
}

impl VirtioNet {
    /// Creates a single-queue frontend and its stack-facing handle.
    pub fn new(
        xs: Xenstore,
        name: impl Into<String>,
        mac: [u8; 6],
        discipline: CopyDiscipline,
    ) -> (VirtioNet, NetHandle) {
        let (front, mut handles) = VirtioNet::new_multiqueue(xs, name, mac, discipline, 1);
        (front, handles.remove(0))
    }

    /// Creates a multi-queue frontend: one virtqueue pair, one event
    /// channel and one stack-facing handle per queue. The backend
    /// classifies received frames with the same RSS hash as the stack's
    /// demux ([`crate::rss`]), so queue q's handle sees exactly the flows
    /// of shard slice q.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new_multiqueue(
        xs: Xenstore,
        name: impl Into<String>,
        mac: [u8; 6],
        discipline: CopyDiscipline,
        queues: usize,
    ) -> (VirtioNet, Vec<NetHandle>) {
        assert!(queues > 0, "a NIC needs at least one queue");
        let stats = Arc::new(Mutex::new(NetifStats::default()));
        let mut from_stack = Vec::with_capacity(queues);
        let mut to_stack = Vec::with_capacity(queues);
        let mut handles = Vec::with_capacity(queues);
        for _ in 0..queues {
            let (tx_in, tx_out) = channel::channel();
            let (rx_in, rx_out) = channel::channel();
            from_stack.push(tx_out);
            to_stack.push(rx_in);
            handles.push(NetHandle::new(mac, tx_in, rx_out, Arc::clone(&stats)));
        }
        let front = VirtioNet {
            xs,
            name: name.into(),
            mac,
            discipline,
            state: VnetState::Init,
            registered_watch: false,
            backend: None,
            staged: Vec::new(),
            pairs: Vec::new(),
            from_stack,
            to_stack,
            stats,
            service_vcpu: 0,
        };
        (front, handles)
    }

    /// Steers queue 0's event channel (and the affinity base for the other
    /// queues) to vCPU `v` once connected.
    pub fn set_service_vcpu(&mut self, v: usize) {
        self.service_vcpu = v;
    }

    /// The interface MAC address.
    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    fn base(&self) -> String {
        format!("device/vnet/{}", self.name)
    }

    /// Grants a queue's three areas to `backend` and writes their refs
    /// under `{base}/q{q}/{dir}-{desc,avail,used}`. Only the used area is
    /// writable by the device; descriptors and the avail ring stay
    /// driver-owned.
    fn advertise_queue(
        &self,
        env: &mut DomainEnv<'_>,
        backend: DomainId,
        pages: &QueuePages,
        q: usize,
        dir: &str,
    ) {
        let base = self.base();
        let desc = env.grant(backend, pages.desc.clone(), false);
        let avail = env.grant(backend, pages.avail.clone(), false);
        let used = env.grant(backend, pages.used.clone(), true);
        for (area, gref) in [("desc", desc), ("avail", avail), ("used", used)] {
            self.xs.write(
                env,
                &format!("{base}/q{q}/{dir}-{area}"),
                &gref.0.to_string(),
            );
        }
    }

    fn step_init(&mut self, env: &mut DomainEnv<'_>) -> bool {
        if !self.registered_watch {
            self.xs.register_watcher(env.domid());
            self.registered_watch = true;
        }
        let Some(backend) = self
            .xs
            .read(env, "backend-domid")
            .and_then(|s| s.parse().ok())
            .map(DomainId)
        else {
            return false;
        };
        self.backend = Some(backend);
        let base = self.base();
        let queues = self.from_stack.len();
        for q in 0..queues {
            let tx = QueuePages::new();
            let rx = QueuePages::new();
            self.advertise_queue(env, backend, &tx, q, "tx");
            self.advertise_queue(env, backend, &rx, q, "rx");
            self.staged.push((tx, rx));
        }
        let domid = env.domid().0.to_string();
        self.xs.write(env, &format!("{base}/frontend-domid"), &domid);
        self.xs.write(env, &format!("{base}/queues"), &queues.to_string());
        self.xs.write(
            env,
            &format!("{base}/mac"),
            &self.mac.map(|b| format!("{b:02x}")).join(":"),
        );
        self.xs.write(env, &format!("{base}/state"), "initialising");
        self.state = VnetState::WaitPort;
        true
    }

    fn step_wait_port(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let base = self.base();
        let queues = self.from_stack.len();
        let mut ports = Vec::with_capacity(queues);
        for q in 0..queues {
            let Some(port) = self
                .xs
                .read(env, &format!("{base}/q{q}/event-port"))
                .and_then(|s| s.parse().ok())
                .map(Port)
            else {
                return false; // backend publishes all ports in one pass
            };
            ports.push(port);
        }
        let backend = self.backend.expect("set in Init");
        for (q, ((tx_pages, rx_pages), remote)) in
            self.staged.drain(..).zip(ports).enumerate()
        {
            let local = env.evtchn_bind(backend, remote).expect("backend allocated");
            let affinity = (self.service_vcpu + q) % env.vcpus();
            if affinity != 0 {
                let _ = env.evtchn_set_vcpu(local, affinity);
            }
            let mut pair = QueuePair {
                port: local,
                tx: SplitQueue::new(tx_pages),
                rx: SplitQueue::new(rx_pages),
                tx_free: Vec::new(),
                tx_inflight: HashMap::new(),
                rx_bufs: HashMap::new(),
                backlog: VecDeque::new(),
            };
            // Post device-writable receive buffers.
            for _ in 0..VNET_RX_BUFFERS {
                let page = SharedPage::new();
                let gref = env.grant(backend, page.clone(), true);
                let (head, _) = Self::post_rx(&mut pair.rx, gref);
                pair.rx_bufs.insert(head, (gref, page));
            }
            // Pre-grant the transmit pool (read-only: the device only
            // reads TX payloads).
            for _ in 0..VNET_TX_BUFFERS {
                let page = SharedPage::new();
                let gref = env.grant(backend, page.clone(), false);
                pair.tx_free.push((gref, page));
            }
            env.evtchn_notify(local).expect("bound");
            self.pairs.push(pair);
        }
        self.xs.write(env, &format!("{base}/state"), "connected");
        env.observe(&format!("vnet-connected:{}", self.name));
        self.state = VnetState::Connected;
        true
    }

    /// Publishes one empty device-writable page on an RX queue, returning
    /// `(head, notify)`. The queue is sized for the buffer pool, so a
    /// repost after a reclaim always has room.
    fn post_rx(rx: &mut SplitQueue, gref: GrantRef) -> (u16, bool) {
        rx.add_chain(&[ChainBuf {
            addr: buf_addr(gref.0, 0),
            len: MAX_FRAME as u32,
            device_writes: true,
        }])
        .expect("RX queue sized for the buffer pool")
    }

    fn step_connected(&mut self, env: &mut DomainEnv<'_>) -> bool {
        let mut progressed = false;
        let entry_lane = env.current_vcpu();
        let queues = self.pairs.len();
        // Drain the per-queue intakes first so each queue's burst is
        // published in one pass and rings at most one doorbell.
        for (q, intake) in self.from_stack.iter_mut().enumerate() {
            let pair = &mut self.pairs[q];
            while let Some(frame) = intake.try_recv() {
                pair.backlog.push_back(frame);
                if pair.backlog.len() > TX_BACKLOG_CAP {
                    pair.backlog.pop_front();
                    self.stats.lock().tx_drops += 1;
                }
            }
        }
        for q in 0..queues {
            let pair = &mut self.pairs[q];
            let _ = env.evtchn_consume(pair.port);
            let mut notify = false;

            // Reclaim completed transmit chains.
            while let Some((head, _len)) = pair.tx.take_used() {
                if let Some(entry) = pair.tx_inflight.remove(&head) {
                    pair.tx_free.push(entry);
                    progressed = true;
                }
            }

            // Deliver received frames and repost their buffers. The used
            // `len` is the frame length the device wrote; payload cost is
            // charged on the queue's lane, the per-core ingress model.
            while let Some((head, len)) = pair.rx.take_used() {
                let Some((gref, page)) = pair.rx_bufs.remove(&head) else {
                    continue;
                };
                let len = (len as usize).min(MAX_FRAME);
                let mut frame = vec![0u8; len];
                page.read(|b| frame.copy_from_slice(&b[..len]));
                let frame = PktBuf::from_vec(frame);
                env.on_vcpu(q % env.vcpus());
                crate::netfront::charge_rx(self.discipline, env, len);
                env.on_vcpu(entry_lane);
                {
                    let mut st = self.stats.lock();
                    st.rx_frames += 1;
                    st.rx_bytes += len as u64;
                }
                let _ = self.to_stack[q].send(frame);
                let (new_head, n) = Self::post_rx(&mut pair.rx, gref);
                notify |= n;
                pair.rx_bufs.insert(new_head, (gref, page));
                progressed = true;
            }

            // Publish queued frames on the TX virtqueue.
            while let Some(frame) = pair.backlog.front() {
                if frame.len() > MAX_FRAME {
                    pair.backlog.pop_front();
                    self.stats.lock().tx_drops += 1;
                    continue;
                }
                let Some((gref, page)) = pair.tx_free.pop() else {
                    break;
                };
                if pair.tx.free_descriptors() == 0 {
                    pair.tx_free.push((gref, page));
                    break;
                }
                let frame = pair.backlog.pop_front().expect("peeked");
                page.write(|b| b[..frame.len()].copy_from_slice(&frame));
                env.on_vcpu(q % env.vcpus());
                crate::netfront::charge_tx(self.discipline, env, frame.len());
                env.on_vcpu(entry_lane);
                let (head, n) = pair
                    .tx
                    .add_chain(&[ChainBuf {
                        addr: buf_addr(gref.0, 0),
                        len: frame.len() as u32,
                        device_writes: false,
                    }])
                    .expect("free_descriptors checked");
                notify |= n;
                pair.tx_inflight.insert(head, (gref, page));
                {
                    let mut st = self.stats.lock();
                    st.tx_frames += 1;
                    st.tx_bytes += frame.len() as u64;
                }
                progressed = true;
            }

            // One doorbell per queue per pass, and only if a publish
            // crossed the device's avail_event mark.
            if notify {
                let _ = env.evtchn_notify(pair.port);
                self.stats.lock().doorbells += 1;
            }
            // Arm used-ring interrupts before blocking; a race means
            // another pass.
            progressed |= pair.tx.enable_used_notifications();
            progressed |= pair.rx.enable_used_notifications();
        }
        progressed
    }
}

impl DeviceService for VirtioNet {
    fn service(&mut self, env: &mut DomainEnv<'_>, _rt: &Runtime) -> bool {
        match self.state {
            VnetState::Init => self.step_init(env),
            VnetState::WaitPort => {
                let p = self.step_wait_port(env);
                if matches!(self.state, VnetState::Connected) {
                    self.step_connected(env) || p
                } else {
                    p
                }
            }
            VnetState::Connected => self.step_connected(env),
        }
    }

    fn watch_ports(&self) -> Vec<Port> {
        self.pairs.iter().map(|p| p.port).collect()
    }
}
