//! The split virtqueue: virtio 1.0's descriptor table + avail/used rings.
//!
//! This is the second ring ABI the device layer speaks (the first being
//! the Xen-style descriptor ring in `mirage-ring`). Where a Xen ring is a
//! single array of fixed-size slots with responses overwriting requests
//! in place, a split virtqueue is three separately-allocated areas:
//!
//! * the **descriptor table** — `QUEUE_SIZE` fixed 16-byte descriptors
//!   `{addr, len, flags, next}`, chained through `next` when a buffer
//!   spans several memory regions; free descriptors are kept on a
//!   driver-private free chain threaded through the same `next` fields;
//! * the **available ring** — driver-written: `{flags, idx, ring[],
//!   used_event}`; the driver publishes descriptor-chain heads here;
//! * the **used ring** — device-written: `{flags, idx, ring[] of
//!   {id, len}, avail_event}`; the device returns consumed heads here
//!   together with the number of bytes it wrote.
//!
//! Notification suppression is the `VIRTIO_F_EVENT_IDX` protocol: each
//! side publishes the ring index *after which* it wants to be signalled
//! (`used_event` for the driver, `avail_event` for the device), and the
//! producer rings the doorbell only when its new index crosses that mark
//! ([`need_event`]) — the same announce-before-blocking discipline as the
//! Xen ring's `req_event`/`rsp_event`, expressed over free-running
//! 16-bit counters.
//!
//! Descriptor `addr` fields are guest "physical" addresses. The simulated
//! substrate models guest memory sharing with grant references, so an
//! address encodes `(grant ref << 12) | offset` ([`buf_addr`] /
//! [`split_addr`]); the device side resolves the page through the grant
//! table exactly as a real backend maps guest frames.
//!
//! Both halves treat the shared pages as hostile: stale or wrapped
//! indices, out-of-range descriptor ids and chain loops are counted in
//! [`VirtqErrors`] and skipped, never followed and never panicked on
//! (the adversarial suite fuzzes exactly these fields).

use mirage_hypervisor::grant::SharedPage;

/// Descriptors per queue (power of two; 16-byte descriptors fill half a
/// page at 128).
pub const QUEUE_SIZE: u16 = 128;

/// Descriptor continues into the descriptor indexed by `next`.
pub const DESC_F_NEXT: u16 = 1;
/// Buffer is device-writable (RX buffers, read payloads, status bytes).
pub const DESC_F_WRITE: u16 = 2;

/// Largest descriptor chain either side will follow.
pub const MAX_CHAIN: usize = QUEUE_SIZE as usize;

const Q: usize = QUEUE_SIZE as usize;

// ------------------------------------------------------------- layout

#[inline]
fn desc_off(i: u16) -> usize {
    i as usize * 16
}

/// Offset of `used_event` within the avail area (after the ring).
const USED_EVENT_OFF: usize = 4 + 2 * Q;
/// Offset of `avail_event` within the used area (after the ring).
const AVAIL_EVENT_OFF: usize = 4 + 8 * Q;

fn get_u16(page: &SharedPage, off: usize) -> u16 {
    page.read(|b| u16::from_le_bytes([b[off], b[off + 1]]))
}

fn set_u16(page: &SharedPage, off: usize, v: u16) {
    page.write(|b| b[off..off + 2].copy_from_slice(&v.to_le_bytes()));
}

/// One entry of the descriptor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Desc {
    /// Guest address of the buffer ([`buf_addr`] encoding).
    pub addr: u64,
    /// Buffer length in bytes.
    pub len: u32,
    /// `DESC_F_NEXT` / `DESC_F_WRITE`.
    pub flags: u16,
    /// Next descriptor in the chain (valid when `DESC_F_NEXT` is set).
    pub next: u16,
}

fn write_desc(page: &SharedPage, i: u16, d: Desc) {
    page.write(|b| {
        let o = desc_off(i);
        b[o..o + 8].copy_from_slice(&d.addr.to_le_bytes());
        b[o + 8..o + 12].copy_from_slice(&d.len.to_le_bytes());
        b[o + 12..o + 14].copy_from_slice(&d.flags.to_le_bytes());
        b[o + 14..o + 16].copy_from_slice(&d.next.to_le_bytes());
    });
}

fn read_desc(page: &SharedPage, i: u16) -> Desc {
    page.read(|b| {
        let o = desc_off(i);
        Desc {
            addr: u64::from_le_bytes(b[o..o + 8].try_into().expect("len")),
            len: u32::from_le_bytes(b[o + 8..o + 12].try_into().expect("len")),
            flags: u16::from_le_bytes([b[o + 12], b[o + 13]]),
            next: u16::from_le_bytes([b[o + 14], b[o + 15]]),
        }
    })
}

/// Packs a grant reference and an intra-page offset into a descriptor
/// address, the simulated stand-in for a guest physical address.
pub fn buf_addr(gref: u32, offset: usize) -> u64 {
    debug_assert!(offset < mirage_hypervisor::PAGE_SIZE);
    (gref as u64) << 12 | offset as u64
}

/// Splits a descriptor address back into `(grant ref, offset)`.
pub fn split_addr(addr: u64) -> (u32, usize) {
    ((addr >> 12) as u32, (addr & 0xFFF) as usize)
}

/// The EVENT_IDX predicate (virtio 1.0 §2.6.7.1): ring the peer iff its
/// announced wake-up mark `event_idx` falls inside `(old_idx, new_idx]`
/// in free-running 16-bit arithmetic.
pub fn need_event(event_idx: u16, new_idx: u16, old_idx: u16) -> bool {
    new_idx.wrapping_sub(event_idx).wrapping_sub(1) < new_idx.wrapping_sub(old_idx)
}

/// The three shared areas of one queue.
#[derive(Debug, Clone)]
pub struct QueuePages {
    /// Descriptor table (driver-written, device-read).
    pub desc: SharedPage,
    /// Available ring (driver-written, device-read).
    pub avail: SharedPage,
    /// Used ring (device-written, driver-read).
    pub used: SharedPage,
}

impl QueuePages {
    /// Allocates the three zeroed areas.
    pub fn new() -> QueuePages {
        QueuePages {
            desc: SharedPage::new(),
            avail: SharedPage::new(),
            used: SharedPage::new(),
        }
    }
}

impl Default for QueuePages {
    fn default() -> Self {
        QueuePages::new()
    }
}

/// Errors from driver-side queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtqError {
    /// Not enough free descriptors for the chain.
    Full,
    /// A chain must name at least one buffer.
    EmptyChain,
    /// Chain longer than [`MAX_CHAIN`].
    TooLong,
}

impl std::fmt::Display for VirtqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            VirtqError::Full => "virtqueue has no free descriptors",
            VirtqError::EmptyChain => "descriptor chain is empty",
            VirtqError::TooLong => "descriptor chain exceeds the queue size",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for VirtqError {}

/// Malformed-shared-state counters; both halves keep one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtqErrors {
    /// Used/avail entries naming a descriptor id out of range or not in
    /// flight.
    pub bad_id: u64,
    /// Descriptor chains that looped or overran [`MAX_CHAIN`].
    pub bad_chain: u64,
    /// Ring index jumps larger than the queue size (stale or wrapped
    /// counters); the reader resynchronises instead of following them.
    pub idx_jumps: u64,
}

impl VirtqErrors {
    /// Total malformed events observed.
    pub fn total(&self) -> u64 {
        self.bad_id + self.bad_chain + self.idx_jumps
    }
}

/// One buffer of a chain the driver is queuing.
#[derive(Debug, Clone, Copy)]
pub struct ChainBuf {
    /// Guest address ([`buf_addr`]).
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Whether the device writes this buffer (RX payloads, status bytes).
    pub device_writes: bool,
}

// ------------------------------------------------------- driver half

/// The driver (guest) half of a split virtqueue: allocates descriptor
/// chains from the free list, publishes them on the avail ring, reclaims
/// them from the used ring.
#[derive(Debug)]
pub struct SplitQueue {
    pages: QueuePages,
    /// Head of the free chain (threaded through `next` in the table).
    free_head: u16,
    /// Free descriptors remaining.
    num_free: u16,
    /// Driver-private shadow of the shared avail index.
    avail_idx: u16,
    /// Next used entry to consume.
    last_used: u16,
    /// Driver-private shadow of each descriptor's chain link, so reclaim
    /// never trusts (or re-reads) device-visible memory.
    chain_next: Vec<Option<u16>>,
    /// Heads currently owned by the device.
    in_flight: Vec<bool>,
    errors: VirtqErrors,
}

impl SplitQueue {
    /// A fresh driver half over `pages`, with every descriptor free.
    pub fn new(pages: QueuePages) -> SplitQueue {
        let mut chain_next = vec![None; Q];
        for (i, link) in chain_next.iter_mut().enumerate().take(Q - 1) {
            *link = Some(i as u16 + 1);
        }
        SplitQueue {
            pages,
            free_head: 0,
            num_free: QUEUE_SIZE,
            avail_idx: 0,
            last_used: 0,
            chain_next,
            in_flight: vec![false; Q],
            errors: VirtqErrors::default(),
        }
    }

    /// The shared areas (to grant to the device domain).
    pub fn pages(&self) -> &QueuePages {
        &self.pages
    }

    /// Free descriptors available for new chains.
    pub fn free_descriptors(&self) -> u16 {
        self.num_free
    }

    /// Malformed-state counters.
    pub fn errors(&self) -> VirtqErrors {
        self.errors
    }

    /// Allocates a descriptor chain for `bufs`, publishes its head on the
    /// avail ring, and returns `(head, notify)` — the chain's head id (the
    /// device echoes it in the used entry) and whether the device's
    /// `avail_event` mark requires a doorbell.
    ///
    /// # Errors
    ///
    /// [`VirtqError::Full`] when fewer than `bufs.len()` descriptors are
    /// free, [`VirtqError::EmptyChain`] / [`VirtqError::TooLong`] for
    /// degenerate chains. Nothing is published on error.
    pub fn add_chain(&mut self, bufs: &[ChainBuf]) -> Result<(u16, bool), VirtqError> {
        if bufs.is_empty() {
            return Err(VirtqError::EmptyChain);
        }
        if bufs.len() > MAX_CHAIN {
            return Err(VirtqError::TooLong);
        }
        if (bufs.len() as u16) > self.num_free {
            return Err(VirtqError::Full);
        }
        // Carve the chain off the free list.
        let head = self.free_head;
        let mut idx = head;
        for (i, buf) in bufs.iter().enumerate() {
            let last = i + 1 == bufs.len();
            let next = self.chain_next[idx as usize];
            let mut flags = if buf.device_writes { DESC_F_WRITE } else { 0 };
            let next_idx = if last {
                self.free_head = next.unwrap_or(0);
                self.chain_next[idx as usize] = None;
                0
            } else {
                flags |= DESC_F_NEXT;
                next.expect("free list holds enough descriptors")
            };
            write_desc(
                &self.pages.desc,
                idx,
                Desc {
                    addr: buf.addr,
                    len: buf.len,
                    flags,
                    next: next_idx,
                },
            );
            if !last {
                idx = next_idx;
            }
        }
        self.num_free -= bufs.len() as u16;
        self.in_flight[head as usize] = true;

        // Publish: ring entry first, then the index (the write barrier a
        // real driver issues between the two).
        let old = self.avail_idx;
        let new = old.wrapping_add(1);
        set_u16(&self.pages.avail, 4 + 2 * (old as usize % Q), head);
        set_u16(&self.pages.avail, 2, new);
        self.avail_idx = new;
        let avail_event = get_u16(&self.pages.used, AVAIL_EVENT_OFF);
        Ok((head, need_event(avail_event, new, old)))
    }

    /// Consumes the next used entry, returning `(chain head, bytes the
    /// device wrote)` and releasing the chain's descriptors back to the
    /// free list. Entries naming invalid or not-in-flight ids are counted
    /// in [`VirtqErrors`] and skipped.
    pub fn take_used(&mut self) -> Option<(u16, u32)> {
        loop {
            let used_idx = get_u16(&self.pages.used, 2);
            let pending = used_idx.wrapping_sub(self.last_used);
            if pending == 0 {
                return None;
            }
            if pending > QUEUE_SIZE {
                // A wrapped or corrupted device index: resynchronise
                // rather than replay garbage entries.
                self.errors.idx_jumps += 1;
                self.last_used = used_idx;
                return None;
            }
            let slot = self.last_used as usize % Q;
            let (id, len) = self.pages.used.read(|b| {
                let o = 4 + 8 * slot;
                (
                    u32::from_le_bytes(b[o..o + 4].try_into().expect("len")),
                    u32::from_le_bytes(b[o + 4..o + 8].try_into().expect("len")),
                )
            });
            self.last_used = self.last_used.wrapping_add(1);
            if id >= QUEUE_SIZE as u32 || !self.in_flight[id as usize] {
                self.errors.bad_id += 1;
                continue;
            }
            let head = id as u16;
            self.free_chain(head);
            return Some((head, len));
        }
    }

    /// Returns a chain (walked through the private shadow links) to the
    /// free list.
    fn free_chain(&mut self, head: u16) {
        self.in_flight[head as usize] = false;
        let mut idx = head;
        let mut freed = 0u16;
        loop {
            freed += 1;
            let next = self.chain_next[idx as usize];
            match next {
                Some(n) if freed < QUEUE_SIZE => {
                    idx = n;
                }
                _ => break,
            }
        }
        // Thread the chain's tail onto the old free head.
        self.chain_next[idx as usize] = if self.num_free == 0 {
            None
        } else {
            Some(self.free_head)
        };
        self.free_head = head;
        self.num_free += freed;
    }

    /// Announces the driver is about to block until the next used entry
    /// (`used_event := last_used`). Returns `true` if used entries raced
    /// in already — re-poll instead of blocking.
    pub fn enable_used_notifications(&mut self) -> bool {
        set_u16(&self.pages.avail, USED_EVENT_OFF, self.last_used);
        get_u16(&self.pages.used, 2) != self.last_used
    }

    /// Used entries waiting to be consumed.
    pub fn pending_used(&self) -> u16 {
        get_u16(&self.pages.used, 2).wrapping_sub(self.last_used)
    }

    /// Walks the free list (bounded), for invariant checks in tests: the
    /// returned ids must be unique and `num_free` long, and disjoint from
    /// every in-flight chain.
    #[doc(hidden)]
    pub fn debug_free_list(&self) -> Vec<u16> {
        let mut out = Vec::new();
        if self.num_free == 0 {
            return out;
        }
        let mut idx = self.free_head;
        for _ in 0..Q + 1 {
            out.push(idx);
            match self.chain_next[idx as usize] {
                Some(n) if out.len() < Q + 1 && (out.len() as u16) < self.num_free => idx = n,
                _ => break,
            }
        }
        out
    }

    /// The descriptor ids of an in-flight chain, walked through the
    /// private shadow (for invariant checks in tests).
    #[doc(hidden)]
    pub fn debug_chain(&self, head: u16) -> Vec<u16> {
        let mut out = Vec::new();
        let mut idx = head;
        for _ in 0..Q {
            out.push(idx);
            match self.chain_next[idx as usize] {
                Some(n) => idx = n,
                None => break,
            }
        }
        out
    }
}

// ------------------------------------------------------- device half

/// A descriptor chain the device popped from the avail ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Head descriptor id (returned in the used entry).
    pub head: u16,
    /// The chain's buffers in order: `(addr, len, device_writes)`.
    pub bufs: Vec<(u64, u32, bool)>,
}

/// The device (backend) half: consumes avail entries, walks descriptor
/// chains, returns used entries.
#[derive(Debug)]
pub struct DeviceQueue {
    pages: QueuePages,
    /// Next avail entry to consume.
    last_avail: u16,
    /// Device-private shadow of the shared used index.
    used_idx: u16,
    errors: VirtqErrors,
}

impl DeviceQueue {
    /// Attaches the device half to mapped queue areas.
    pub fn attach(pages: QueuePages) -> DeviceQueue {
        DeviceQueue {
            pages,
            last_avail: 0,
            used_idx: 0,
            errors: VirtqErrors::default(),
        }
    }

    /// Malformed-state counters.
    pub fn errors(&self) -> VirtqErrors {
        self.errors
    }

    /// Pops the next available descriptor chain, if any. Malformed
    /// entries (out-of-range heads, looping or overlong chains, index
    /// jumps past the queue size) are counted and skipped — the device
    /// never follows hostile ring state.
    pub fn pop_avail(&mut self) -> Option<Chain> {
        loop {
            let avail_idx = get_u16(&self.pages.avail, 2);
            let pending = avail_idx.wrapping_sub(self.last_avail);
            if pending == 0 {
                return None;
            }
            if pending > QUEUE_SIZE {
                self.errors.idx_jumps += 1;
                self.last_avail = avail_idx;
                return None;
            }
            let head = get_u16(&self.pages.avail, 4 + 2 * (self.last_avail as usize % Q));
            self.last_avail = self.last_avail.wrapping_add(1);
            if head >= QUEUE_SIZE {
                self.errors.bad_id += 1;
                continue;
            }
            match self.walk_chain(head) {
                Some(bufs) => return Some(Chain { head, bufs }),
                None => continue,
            }
        }
    }

    fn walk_chain(&mut self, head: u16) -> Option<Vec<(u64, u32, bool)>> {
        let mut bufs = Vec::new();
        let mut idx = head;
        let mut seen = vec![false; Q];
        loop {
            if seen[idx as usize] {
                // A descriptor loop: abandon the chain.
                self.errors.bad_chain += 1;
                return None;
            }
            seen[idx as usize] = true;
            let d = read_desc(&self.pages.desc, idx);
            bufs.push((d.addr, d.len, d.flags & DESC_F_WRITE != 0));
            if d.flags & DESC_F_NEXT == 0 {
                return Some(bufs);
            }
            if d.next >= QUEUE_SIZE {
                self.errors.bad_id += 1;
                return None;
            }
            idx = d.next;
        }
    }

    /// Returns a chain to the driver with `len` bytes written, and
    /// reports whether the driver's `used_event` mark requires an
    /// interrupt.
    pub fn push_used(&mut self, head: u16, len: u32) -> bool {
        let old = self.used_idx;
        let new = old.wrapping_add(1);
        self.pages.used.write(|b| {
            let o = 4 + 8 * (old as usize % Q);
            b[o..o + 4].copy_from_slice(&(head as u32).to_le_bytes());
            b[o + 4..o + 8].copy_from_slice(&len.to_le_bytes());
        });
        set_u16(&self.pages.used, 2, new);
        self.used_idx = new;
        let used_event = get_u16(&self.pages.avail, USED_EVENT_OFF);
        need_event(used_event, new, old)
    }

    /// Announces the device is about to block until the next avail entry
    /// (`avail_event := last_avail`). Returns `true` if entries raced in.
    pub fn enable_avail_notifications(&mut self) -> bool {
        set_u16(&self.pages.used, AVAIL_EVENT_OFF, self.last_avail);
        get_u16(&self.pages.avail, 2) != self.last_avail
    }

    /// Avail entries waiting to be consumed.
    pub fn pending_avail(&self) -> u16 {
        get_u16(&self.pages.avail, 2).wrapping_sub(self.last_avail)
    }
}

/// Creates a connected driver/device pair over fresh queue areas (the
/// in-process analogue of grant-mapping the three pages).
pub fn pair() -> (SplitQueue, DeviceQueue) {
    let pages = QueuePages::new();
    (SplitQueue::new(pages.clone()), DeviceQueue::attach(pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::collection;

    fn one(addr: u64) -> [ChainBuf; 1] {
        [ChainBuf {
            addr,
            len: 64,
            device_writes: false,
        }]
    }

    #[test]
    fn chain_round_trips_head_and_len() {
        let (mut drv, mut dev) = pair();
        let (_, notify) = drv.add_chain(&one(buf_addr(7, 0))).unwrap();
        assert!(notify, "first publish rings a fresh device");
        let chain = dev.pop_avail().expect("chain visible");
        assert_eq!(chain.bufs, vec![(buf_addr(7, 0), 64, false)]);
        let irq = dev.push_used(chain.head, 64);
        assert!(irq, "driver armed at zero");
        assert_eq!(drv.take_used(), Some((chain.head, 64)));
        assert_eq!(drv.take_used(), None);
        assert_eq!(drv.free_descriptors(), QUEUE_SIZE);
    }

    #[test]
    fn multi_descriptor_chain_preserves_order_and_write_flags() {
        let (mut drv, mut dev) = pair();
        let bufs = [
            ChainBuf { addr: buf_addr(1, 0), len: 23, device_writes: false },
            ChainBuf { addr: buf_addr(2, 0), len: 4096, device_writes: true },
            ChainBuf { addr: buf_addr(1, 2048), len: 1, device_writes: true },
        ];
        drv.add_chain(&bufs).unwrap();
        let chain = dev.pop_avail().expect("chain visible");
        assert_eq!(
            chain.bufs,
            vec![
                (buf_addr(1, 0), 23, false),
                (buf_addr(2, 0), 4096, true),
                (buf_addr(1, 2048), 1, true),
            ]
        );
        assert_eq!(drv.free_descriptors(), QUEUE_SIZE - 3);
        dev.push_used(chain.head, 4097);
        assert_eq!(drv.take_used(), Some((chain.head, 4097)));
        assert_eq!(drv.free_descriptors(), QUEUE_SIZE, "whole chain reclaimed");
    }

    #[test]
    fn queue_fills_at_queue_size_and_recovers() {
        let (mut drv, mut dev) = pair();
        for i in 0..QUEUE_SIZE {
            drv.add_chain(&one(buf_addr(i as u32, 0))).unwrap();
        }
        assert_eq!(drv.add_chain(&one(0)), Err(VirtqError::Full));
        let chain = dev.pop_avail().expect("chain");
        dev.push_used(chain.head, 0);
        assert!(drv.take_used().is_some());
        assert!(drv.add_chain(&one(0)).is_ok(), "slot recycled");
    }

    #[test]
    fn doorbells_suppressed_while_device_is_awake() {
        let (mut drv, mut dev) = pair();
        // Device processes the first chain but does NOT re-arm: it is
        // still awake, so subsequent publishes must not ring.
        assert!(drv.add_chain(&one(buf_addr(1, 0))).unwrap().1);
        let c = dev.pop_avail().unwrap();
        dev.push_used(c.head, 0);
        drv.take_used();
        for i in 0..20u32 {
            let (_, notify) = drv.add_chain(&one(buf_addr(i + 2, 0))).unwrap();
            assert!(!notify, "publish {i} suppressed while device is awake");
        }
        // Arming while entries are pending reports the race.
        assert!(dev.enable_avail_notifications(), "pending entries detected");
        // Drain, re-arm cleanly: the next publish rings again.
        while let Some(c) = dev.pop_avail() {
            dev.push_used(c.head, 0);
        }
        while drv.take_used().is_some() {}
        assert!(!dev.enable_avail_notifications(), "queue quiet");
        assert!(
            drv.add_chain(&one(99)).unwrap().1,
            "armed device gets its doorbell"
        );
    }

    #[test]
    fn interrupts_suppressed_while_driver_is_awake() {
        let (mut drv, mut dev) = pair();
        for i in 0..8u32 {
            drv.add_chain(&one(buf_addr(i, 0))).unwrap();
        }
        // Driver consumed nothing yet and armed at 0: first used entry
        // interrupts, later ones are suppressed until it re-arms.
        let c = dev.pop_avail().unwrap();
        assert!(dev.push_used(c.head, 1), "first completion interrupts");
        for _ in 0..7 {
            let c = dev.pop_avail().unwrap();
            assert!(!c.bufs.is_empty());
            assert!(!dev.push_used(c.head, 1), "batched completions suppressed");
        }
        while drv.take_used().is_some() {}
        assert!(!drv.enable_used_notifications(), "all consumed");
    }

    #[test]
    fn indices_wrap_across_many_generations() {
        let (mut drv, mut dev) = pair();
        for round in 0..(QUEUE_SIZE as u32 * 5 + 3) {
            drv.add_chain(&one(buf_addr(round, 0))).unwrap();
            let c = dev.pop_avail().expect("chain");
            assert_eq!(c.bufs[0].0, buf_addr(round, 0));
            dev.push_used(c.head, round);
            assert_eq!(drv.take_used(), Some((c.head, round)));
        }
        assert_eq!(drv.errors().total(), 0);
        assert_eq!(dev.errors().total(), 0);
    }

    #[test]
    fn need_event_matches_the_spec_truth_table() {
        // event inside (old, new]: ring.
        assert!(need_event(1, 2, 0));
        assert!(need_event(5, 6, 5));
        // event already passed (stale): suppressed.
        assert!(!need_event(2, 10, 5));
        // event ahead of new: suppressed.
        assert!(!need_event(7, 6, 5));
        // wrapping: old near u16::MAX, new wrapped past zero.
        assert!(need_event(u16::MAX, 1, u16::MAX - 1));
        assert!(!need_event(3, 1, u16::MAX - 1));
    }

    // ---------------------------------------------------- virtqueue_props

    /// Checks every free-list/chain invariant after each step: no leaked
    /// descriptors, no double-free, no cross-linked chains.
    fn assert_invariants(drv: &SplitQueue, live: &std::collections::BTreeSet<u16>) {
        let free = drv.debug_free_list();
        assert_eq!(
            free.len(),
            drv.free_descriptors() as usize,
            "free list length matches the counter"
        );
        let mut seen = std::collections::BTreeSet::new();
        for id in &free {
            assert!(seen.insert(*id), "descriptor {id} appears twice in the free list");
        }
        let mut in_chains = std::collections::BTreeSet::new();
        for head in live {
            for id in drv.debug_chain(*head) {
                assert!(
                    in_chains.insert(id),
                    "descriptor {id} cross-linked into two live chains"
                );
                assert!(
                    !seen.contains(&id),
                    "descriptor {id} is simultaneously free and in a live chain"
                );
            }
        }
        assert_eq!(
            seen.len() + in_chains.len(),
            Q,
            "every descriptor is exactly once free or in exactly one chain"
        );
    }

    mirage_testkit::property! {
        /// virtqueue_props: seeded alloc/free/chain cycles on the
        /// descriptor free list never leak, double-free, or cross-link
        /// descriptors, under any interleaving of publishes, device
        /// echoes and reclaims.
        fn virtqueue_props(script in collection::vec(0u8..8, 1..120)) {
            let (mut drv, mut dev) = pair();
            let mut live: std::collections::BTreeSet<u16> = Default::default();
            let mut addr: u32 = 1;
            for op in script {
                match op {
                    // Publish a chain of 1..=4 buffers.
                    0..=3 => {
                        let n = (op as usize % 4) + 1;
                        let bufs: Vec<ChainBuf> = (0..n)
                            .map(|i| {
                                addr += 1;
                                ChainBuf {
                                    addr: buf_addr(addr, 0),
                                    len: 64 * (i as u32 + 1),
                                    device_writes: i % 2 == 1,
                                }
                            })
                            .collect();
                        // A Full queue is a legal outcome, not a failure.
                        let _ = drv.add_chain(&bufs);
                    }
                    // Device consumes one chain and completes it.
                    4..=5 => {
                        if let Some(c) = dev.pop_avail() {
                            live.insert(c.head);
                            dev.push_used(c.head, 1);
                        }
                    }
                    // Driver reclaims one completion.
                    _ => {
                        if let Some((head, _)) = drv.take_used() {
                            live.remove(&head);
                        }
                    }
                }
                // In-flight-but-not-yet-popped chains are invisible to
                // `live`; only run the full partition check when the
                // device has caught up with the driver.
                if dev.pending_avail() == 0 {
                    assert_invariants(&drv, &live);
                }
                assert_eq!(drv.errors().total(), 0, "well-formed traffic never errors");
                assert_eq!(dev.errors().total(), 0, "well-formed traffic never errors");
            }
        }
    }
}
