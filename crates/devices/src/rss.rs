//! Receive-side scaling: Toeplitz classification of raw Ethernet frames
//! into netfront RX queues.
//!
//! A multi-queue [`Netfront`](crate::netfront::Netfront) fans received
//! frames out to per-core ingress rings by flow hash, so every TCP flow
//! lands on exactly one queue — and therefore one vCPU — before the stack
//! ever sees it. The hash here MUST agree with the connection-table shard
//! hash in `mirage-net` (`net::tcp::demux::flow_hash`): the net crate
//! depends on this one, so the key and kernel are duplicated rather than
//! shared, and a cross-crate property test over a seeded corpus of
//! 4-tuples pins the two implementations together.
//!
//! The input tuple is taken from the *receiver's* perspective —
//! `(src_ip, src_port, dst_port)` of the incoming segment is the
//! `(peer_ip, peer_port, local_port)` the stack's demux hashes — so a
//! frame is steered to the very shard its TCB lives in.

/// Shard-space width shared with `mirage-net`'s connection demux: 64
/// shards, a disjoint slice of which each vCPU owns.
pub const SHARD_BITS: u32 = 6;
/// Number of RSS shards.
pub const SHARDS: u32 = 1 << SHARD_BITS;

/// The fixed 16-byte Toeplitz key (same constant as the net demux; the
/// classic Microsoft RSS key truncated to our 8-byte input width).
const RSS_KEY: [u8; 16] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f,
    0xb0,
];

/// Toeplitz hash over `(src_ip, src_port, dst_port)` — 8 bytes of input,
/// bit-for-bit identical to `mirage-net`'s `flow_hash`.
pub fn toeplitz(src_ip: [u8; 4], src_port: u16, dst_port: u16) -> u32 {
    let mut input = [0u8; 8];
    input[0..4].copy_from_slice(&src_ip);
    input[4..6].copy_from_slice(&src_port.to_be_bytes());
    input[6..8].copy_from_slice(&dst_port.to_be_bytes());

    let mut hash = 0u32;
    let mut window = u32::from_be_bytes(RSS_KEY[0..4].try_into().expect("key length"));
    let mut next_key_bit = 32usize;
    for byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                hash ^= window;
            }
            let incoming = RSS_KEY[next_key_bit / 8] >> (7 - next_key_bit % 8) & 1;
            window = window << 1 | u32::from(incoming);
            next_key_bit += 1;
        }
    }
    hash
}

/// Classifies a raw Ethernet frame to an RX queue index in `0..queues`.
///
/// IPv4 TCP frames hash their flow tuple into the 64-way shard space and
/// fold `shard % queues`; everything else (ARP, ICMP, UDP, short or
/// malformed frames) rides queue 0, where the stack's control-plane
/// worker lives.
pub fn rx_queue(frame: &[u8], queues: usize) -> usize {
    if queues <= 1 {
        return 0;
    }
    match classify(frame) {
        Some(hash) => (hash & (SHARDS - 1)) as usize % queues,
        None => 0,
    }
}

/// The flow hash of an IPv4 TCP frame, if it is one.
pub fn classify(frame: &[u8]) -> Option<u32> {
    // Ethernet header: dst(6) src(6) ethertype(2).
    if frame.len() < 14 + 20 {
        return None;
    }
    if frame[12] != 0x08 || frame[13] != 0x00 {
        return None; // not IPv4
    }
    let ip = &frame[14..];
    if ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(ip[0] & 0x0f) * 4;
    if ihl < 20 || ip.len() < ihl + 4 {
        return None;
    }
    if ip[9] != 6 {
        return None; // not TCP
    }
    let src_ip: [u8; 4] = ip[12..16].try_into().expect("checked length");
    let tcp = &ip[ihl..];
    let src_port = u16::from_be_bytes(tcp[0..2].try_into().expect("checked length"));
    let dst_port = u16::from_be_bytes(tcp[2..4].try_into().expect("checked length"));
    Some(toeplitz(src_ip, src_port, dst_port))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal IPv4/TCP frame with the given flow tuple.
    fn tcp_frame(src_ip: [u8; 4], src_port: u16, dst_port: u16) -> Vec<u8> {
        let mut f = vec![0u8; 14 + 20 + 20];
        f[12] = 0x08; // IPv4 ethertype
        f[13] = 0x00;
        f[14] = 0x45; // v4, IHL 5
        f[14 + 9] = 6; // TCP
        f[14 + 12..14 + 16].copy_from_slice(&src_ip);
        f[34..36].copy_from_slice(&src_port.to_be_bytes());
        f[36..38].copy_from_slice(&dst_port.to_be_bytes());
        f
    }

    #[test]
    fn tcp_frames_classify_by_flow_hash() {
        let f = tcp_frame([10, 0, 0, 7], 43211, 80);
        let h = classify(&f).expect("TCP frame classifies");
        assert_eq!(h, toeplitz([10, 0, 0, 7], 43211, 80));
        // Queue index is the shard folded over the queue count.
        assert_eq!(rx_queue(&f, 4), (h & (SHARDS - 1)) as usize % 4);
        // Same flow, same queue — forever.
        assert_eq!(rx_queue(&f, 4), rx_queue(&f, 4));
    }

    #[test]
    fn non_tcp_frames_ride_queue_zero() {
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(classify(&arp), None);
        assert_eq!(rx_queue(&arp, 8), 0);

        let mut udp = tcp_frame([10, 0, 0, 7], 53, 53);
        udp[14 + 9] = 17; // UDP
        assert_eq!(rx_queue(&udp, 8), 0);

        assert_eq!(rx_queue(&[0u8; 10], 8), 0, "runt frame");
    }

    #[test]
    fn single_queue_shortcuts() {
        let f = tcp_frame([10, 0, 0, 9], 50000, 5001);
        assert_eq!(rx_queue(&f, 1), 0);
        assert_eq!(rx_queue(&f, 0), 0);
    }
}
