//! Response memoization (paper §3.5.2 / §4.2).
//!
//! "We found that our DNS server gained a dramatic speed increase by
//! applying a memoization library to network responses" — a 20-line patch
//! that took the appliance from ~40 k to 75–80 kqueries/s (Figure 10).
//! This is that library: a bounded LRU memo table with hit statistics,
//! usable by any service whose responses are a pure function of the
//! request.

use std::hash::Hash;
use std::sync::Arc;

use mirage_testkit::hash::DetHashMap;
use mirage_testkit::sync::Mutex;

/// Memo counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

struct MemoInner<K, V> {
    map: DetHashMap<K, (V, u64)>, // value, last-used tick
    tick: u64,
    capacity: usize,
    stats: MemoStats,
}

/// A bounded memoization table.
///
/// # Example
///
/// ```
/// use mirage_storage::memo::Memoizer;
///
/// let memo: Memoizer<u32, u32> = Memoizer::new(128);
/// let square = |x: &u32| x * x;
/// assert_eq!(memo.get_or_compute(7, square), 49);
/// assert_eq!(memo.get_or_compute(7, |_| unreachable!("memoized")), 49);
/// assert_eq!(memo.stats().hits, 1);
/// ```
pub struct Memoizer<K, V> {
    inner: Arc<Mutex<MemoInner<K, V>>>,
}

impl<K, V> Clone for Memoizer<K, V> {
    fn clone(&self) -> Self {
        Memoizer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Eq + Hash, V> std::fmt::Debug for Memoizer<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(f, "Memoizer({}/{} entries)", inner.map.len(), inner.capacity)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Memoizer<K, V> {
    /// A table bounded to `capacity` entries (LRU eviction).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Memoizer<K, V> {
        assert!(capacity > 0, "memo table needs at least one slot");
        Memoizer {
            inner: Arc::new(Mutex::new(MemoInner {
                map: DetHashMap::default(),
                tick: 0,
                capacity,
                stats: MemoStats::default(),
            })),
        }
    }

    /// Returns the memoized value for `key`, computing and inserting it on
    /// first use.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce(&K) -> V) -> V {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((v, used)) = inner.map.get_mut(&key) {
            *used = tick;
            let value = v.clone();
            inner.stats.hits += 1;
            return value;
        }
        inner.stats.misses += 1;
        // Compute outside the borrow of the map entry (still under the
        // lock: callers' compute fns are cheap and pure).
        let value = compute(&key);
        if inner.map.len() >= inner.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(key, (value.clone(), tick));
        value
    }

    /// Looks up without computing.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.inner.lock().map.get(key).map(|(v, _)| v.clone())
    }

    /// Drops every entry (e.g. on zone reload).
    pub fn invalidate_all(&self) {
        self.inner.lock().map.clear();
    }

    /// Counters.
    pub fn stats(&self) -> MemoStats {
        self.inner.lock().stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_reports_hits() {
        let memo: Memoizer<String, usize> = Memoizer::new(8);
        let mut computed = 0;
        for _ in 0..3 {
            let v = memo.get_or_compute("key".to_owned(), |k| {
                computed += 1;
                k.len()
            });
            assert_eq!(v, 3);
        }
        assert_eq!(computed, 1, "computed exactly once");
        let st = memo.stats();
        assert_eq!((st.hits, st.misses), (2, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let memo: Memoizer<u32, u32> = Memoizer::new(2);
        memo.get_or_compute(1, |_| 1);
        memo.get_or_compute(2, |_| 2);
        memo.get_or_compute(1, |_| 1); // refresh 1
        memo.get_or_compute(3, |_| 3); // evicts 2
        assert!(memo.peek(&1).is_some());
        assert!(memo.peek(&2).is_none(), "2 was least recently used");
        assert!(memo.peek(&3).is_some());
        assert_eq!(memo.stats().evictions, 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let memo: Memoizer<u32, u32> = Memoizer::new(4);
        memo.get_or_compute(1, |_| 1);
        memo.invalidate_all();
        assert!(memo.is_empty());
        memo.get_or_compute(1, |_| 10);
        assert_eq!(memo.peek(&1), Some(10), "recomputed after invalidation");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _: Memoizer<u8, u8> = Memoizer::new(0);
    }
}
