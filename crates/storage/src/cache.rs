//! Caching policies as libraries (paper §3.5.2, Figure 9).
//!
//! "Traditional OS kernels layer filesystems over block devices … and
//! coalesce writes into a kernel buffer cache. … In contrast, Mirage …
//! gives control to the application over caching policy … Different
//! caching policies can be provided as libraries (OCaml modules) to be
//! linked at build time."
//!
//! [`BufferCache`] reproduces the *conventional* kernel policy for the
//! Figure 9 comparison: reads pass through an LRU page cache and pay a
//! per-page management cost (lookup, locking, LRU maintenance, and the
//! copy out of the cache) on every access. The paper measured that policy
//! plateauing around 300 MB/s against 1.6 GB/s for direct I/O on the same
//! device; [`BufferCache::PER_PAGE_OVERHEAD`] is calibrated to that
//! published plateau and documented as such.

use std::collections::HashMap;
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_devices::blk::SECTOR_SIZE;
use mirage_hypervisor::Dur;
use mirage_runtime::Runtime;

use crate::block::{BlockError, BlockIo, BoxFuture};

/// Sectors per cache page.
const SECTORS_PER_PAGE: u64 = 8;

/// Cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Page-cache hits.
    pub hits: u64,
    /// Page-cache misses (device reads).
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

struct CacheInner {
    pages: HashMap<u64, Vec<u8>>,
    lru: Vec<u64>,
    capacity_pages: usize,
    stats: CacheStats,
}

/// A write-through LRU buffer cache wrapping any [`BlockIo`] — the
/// conventional-kernel storage path of Figure 9.
pub struct BufferCache<B> {
    dev: Arc<B>,
    rt: Runtime,
    inner: Arc<Mutex<CacheInner>>,
}

impl<B> Clone for BufferCache<B> {
    fn clone(&self) -> Self {
        BufferCache {
            dev: Arc::clone(&self.dev),
            rt: self.rt.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: BlockIo> std::fmt::Debug for BufferCache<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "BufferCache({} pages cached, {:?})",
            inner.pages.len(),
            inner.stats
        )
    }
}

impl<B: BlockIo + 'static> BufferCache<B> {
    /// Per-4 KiB-page management cost of the kernel buffered path,
    /// calibrated to the paper's measured ~300 MB/s plateau
    /// (4096 B / 300 MB/s ≈ 13 µs per page).
    pub const PER_PAGE_OVERHEAD: Dur = Dur::micros(13);

    /// Wraps `dev` with a cache of `capacity_pages` 4 KiB pages.
    pub fn new(rt: &Runtime, dev: B, capacity_pages: usize) -> BufferCache<B> {
        BufferCache {
            dev: Arc::new(dev),
            rt: rt.clone(),
            inner: Arc::new(Mutex::new(CacheInner {
                pages: HashMap::new(),
                lru: Vec::new(),
                capacity_pages,
                stats: CacheStats::default(),
            })),
        }
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    fn touch(inner: &mut CacheInner, page: u64) {
        if let Some(pos) = inner.lru.iter().position(|p| *p == page) {
            inner.lru.remove(pos);
        }
        inner.lru.push(page);
    }

    fn insert(inner: &mut CacheInner, page: u64, data: Vec<u8>) {
        if inner.pages.len() >= inner.capacity_pages && !inner.pages.contains_key(&page) {
            if let Some(victim) = inner.lru.first().copied() {
                inner.lru.remove(0);
                inner.pages.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.pages.insert(page, data);
        Self::touch(inner, page);
    }
}

impl<B: BlockIo + 'static> BlockIo for BufferCache<B> {
    fn sector_count(&self) -> u64 {
        self.dev.sector_count()
    }

    fn read(&self, sector: u64, count: u32) -> BoxFuture<Result<Vec<u8>, BlockError>> {
        let this = self.clone();
        Box::pin(async move {
            let end = sector + count as u64;
            if end > this.dev.sector_count() {
                return Err(BlockError::OutOfRange);
            }
            let first_page = sector / SECTORS_PER_PAGE;
            let last_page = (end - 1) / SECTORS_PER_PAGE;

            // Readahead: if any page of the span misses, fetch the whole
            // span in one device request (the kernel's readahead window),
            // which pipelines through the ring, then populate the cache.
            let all_cached = {
                let inner = this.inner.lock();
                (first_page..=last_page).all(|p| inner.pages.contains_key(&p))
            };
            if !all_cached {
                let span_start = first_page * SECTORS_PER_PAGE;
                let span_sectors = ((last_page - first_page + 1) * SECTORS_PER_PAGE) as u32;
                let data = this.dev.read(span_start, span_sectors).await?;
                let mut inner = this.inner.lock();
                for page in first_page..=last_page {
                    let off = ((page - first_page) * SECTORS_PER_PAGE) as usize * SECTOR_SIZE;
                    inner.stats.misses += 1;
                    let chunk = data[off..off + SECTORS_PER_PAGE as usize * SECTOR_SIZE].to_vec();
                    Self::insert(&mut inner, page, chunk);
                }
            }

            let mut assembled = Vec::with_capacity(count as usize * SECTOR_SIZE);
            for page in first_page..=last_page {
                // Every page access pays the cache-management overhead plus
                // the copy out of the cache into the caller's buffer.
                this.rt.charge(Self::PER_PAGE_OVERHEAD);
                // Look up (and account) without holding the guard across
                // any await point.
                let hit = {
                    let mut inner = this.inner.lock();
                    let hit = inner.pages.get(&page).cloned();
                    if hit.is_some() {
                        if all_cached {
                            inner.stats.hits += 1;
                        }
                        Self::touch(&mut inner, page);
                    }
                    hit
                };
                let data = match hit {
                    Some(d) => d,
                    None => {
                        // Evicted between fill and copy-out (tiny caches):
                        // re-read the single page.
                        let d = this
                            .dev
                            .read(page * SECTORS_PER_PAGE, SECTORS_PER_PAGE as u32)
                            .await?;
                        let mut inner = this.inner.lock();
                        Self::insert(&mut inner, page, d.clone());
                        d
                    }
                };
                let page_start_sector = page * SECTORS_PER_PAGE;
                let from = sector.max(page_start_sector) - page_start_sector;
                let to = end.min(page_start_sector + SECTORS_PER_PAGE) - page_start_sector;
                assembled.extend_from_slice(
                    &data[from as usize * SECTOR_SIZE..to as usize * SECTOR_SIZE],
                );
            }
            Ok(assembled)
        })
    }

    fn write(&self, sector: u64, data: Vec<u8>) -> BoxFuture<Result<(), BlockError>> {
        let this = self.clone();
        Box::pin(async move {
            // Write-through: update cached pages then hit the device.
            if !data.len().is_multiple_of(SECTOR_SIZE) {
                return Err(BlockError::Unaligned);
            }
            {
                let mut inner = this.inner.lock();
                let count = (data.len() / SECTOR_SIZE) as u64;
                for page in sector / SECTORS_PER_PAGE..=(sector + count - 1) / SECTORS_PER_PAGE {
                    // Invalidate rather than merge: simple and correct.
                    inner.pages.remove(&page);
                    if let Some(pos) = inner.lru.iter().position(|p| *p == page) {
                        inner.lru.remove(pos);
                    }
                }
            }
            this.rt.charge(Self::PER_PAGE_OVERHEAD);
            this.dev.write(sector, data).await
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDisk;
    use mirage_hypervisor::Hypervisor;
    use mirage_runtime::UnikernelGuest;

    fn run_case<F, Fut>(f: F)
    where
        F: FnOnce(Runtime) -> Fut + Send + 'static,
        Fut: std::future::Future<Output = i64> + Send + 'static,
    {
        let guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move { f(rt2).await })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("t", 64, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn repeat_reads_hit_the_cache() {
        run_case(|rt| async move {
            let cache = BufferCache::new(&rt, MemDisk::new(1024), 16);
            cache.write(0, vec![9u8; 8 * SECTOR_SIZE]).await.unwrap();
            let a = cache.read(0, 8).await.unwrap();
            let b = cache.read(0, 8).await.unwrap();
            assert_eq!(a, b);
            let stats = cache.stats();
            assert_eq!(stats.misses, 1, "first read misses");
            assert_eq!(stats.hits, 1, "second read hits");
            0
        });
    }

    #[test]
    fn eviction_at_capacity() {
        run_case(|rt| async move {
            let cache = BufferCache::new(&rt, MemDisk::new(4096), 2);
            for page in 0..4u64 {
                cache.read(page * 8, 8).await.unwrap();
            }
            let stats = cache.stats();
            assert_eq!(stats.misses, 4);
            assert_eq!(stats.evictions, 2, "LRU evicted beyond capacity 2");
            // Oldest page is gone: reading it misses again.
            cache.read(0, 8).await.unwrap();
            assert_eq!(cache.stats().misses, 5);
            0
        });
    }

    #[test]
    fn writes_invalidate_cached_pages() {
        run_case(|rt| async move {
            let cache = BufferCache::new(&rt, MemDisk::new(1024), 16);
            cache.read(0, 8).await.unwrap();
            cache.write(0, vec![5u8; SECTOR_SIZE]).await.unwrap();
            let data = cache.read(0, 1).await.unwrap();
            assert_eq!(data, vec![5u8; SECTOR_SIZE], "read-after-write sees new data");
            0
        });
    }

    #[test]
    fn partial_page_reads_assemble_correctly() {
        run_case(|rt| async move {
            let disk = MemDisk::new(1024);
            let mut pattern = Vec::new();
            for s in 0..16u8 {
                pattern.extend(vec![s; SECTOR_SIZE]);
            }
            disk.write(0, pattern.clone()).await.unwrap();
            let cache = BufferCache::new(&rt, disk, 16);
            // Read sectors 5..11 (crosses the page boundary at 8).
            let got = cache.read(5, 6).await.unwrap();
            assert_eq!(got, pattern[5 * SECTOR_SIZE..11 * SECTOR_SIZE].to_vec());
            0
        });
    }
}
