//! Storage libraries for mirage-rs (paper §3.5.2, Table 1).
//!
//! "Mirage block devices share the same Ring abstraction as network
//! devices … with filesystems and caching provided as OCaml libraries.
//! This gives control to the application over caching policy rather than
//! providing only one default cache policy."
//!
//! * [`block`] — the policy-free asynchronous block layer:
//!   [`block::BlkDevice`] over a blkfront ring, [`block::MemDisk`] for
//!   tests. All writes are direct.
//! * [`cache`] — caching *as a library*: [`cache::BufferCache`] is the
//!   conventional-kernel write-through LRU policy used as the Figure 9
//!   baseline.
//! * [`fat`] — the FAT-32 filesystem with sector-at-a-time read iterators.
//! * [`btree`] — the append-only copy-on-write B-tree (Baardskeerder port)
//!   with checksummed commits and torn-write recovery.
//! * [`kv`] — the simple key-value store.
//! * [`memcache`] — the memcache text protocol over the KV store.
//! * [`memo`] — the response-memoization library behind the paper's DNS
//!   speedup (§4.2).

pub mod block;
pub mod btree;
pub mod cache;
pub mod fat;
pub mod kv;
pub mod memcache;
pub mod memo;

pub use block::{BlkDevice, BlockError, BlockIo, MemDisk};
pub use btree::{AppendLog, BlockLog, MemLog, Tree, TreeError};
pub use cache::BufferCache;
pub use fat::{Fat32, FatError};
pub use kv::KvStore;
pub use memcache::MemcacheSession;
pub use memo::Memoizer;

#[cfg(test)]
mod tests {
    //! Cross-module test: FAT-32 over a real blkfront ring serviced by the
    //! driver domain.

    use super::*;
    use mirage_devices::{Blkfront, DriverDomain, Xenstore};
    use mirage_hypervisor::{Dur, Hypervisor, Time};
    use mirage_runtime::UnikernelGuest;

    #[test]
    fn fat32_over_blkfront_end_to_end() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        let (front, handle) = Blkfront::new(xs.clone(), "vda", 1 << 16);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let dev = BlkDevice::new(&rt2, handle);
                let fs = Fat32::format(dev).await.expect("format");
                fs.mkdir("www").await.unwrap();
                let page = vec![b'x'; 10_000];
                fs.write_file("www/index.htm", &page).await.unwrap();
                let back = fs.read_file("www/index.htm").await.unwrap();
                assert_eq!(back, page);
                0
            })
        });
        guest.add_device(Box::new(front));
        let dom = hv.create_domain("guest", 64, Box::new(guest));
        hv.run_until(Time::ZERO + Dur::secs(60));
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn btree_over_blkfront_survives_remount() {
        let xs = Xenstore::new();
        let mut hv = Hypervisor::new();
        hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

        let (front, handle) = Blkfront::new(xs.clone(), "vdb", 1 << 16);
        let mut guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let dev = BlkDevice::new(&rt2, handle);
                let log = BlockLog::new(dev, 0);
                let tree = Tree::new(log.clone());
                for i in 0..50u32 {
                    tree.set(format!("user{i}").as_bytes(), format!("tweet {i}").as_bytes())
                        .await
                        .unwrap();
                }
                // "Remount": recover a fresh tree from the same device log
                // (clones share the device and recovered length).
                let recovered = Tree::recover(log.clone()).await.unwrap();
                assert_eq!(
                    recovered.get(b"user42").await.unwrap(),
                    Some(b"tweet 42".to_vec())
                );
                0
            })
        });
        guest.add_device(Box::new(front));
        let dom = hv.create_domain("guest", 64, Box::new(guest));
        hv.run_until(Time::ZERO + Dur::secs(60));
        assert_eq!(hv.exit_code(dom), Some(0));
    }
}
