//! The memcache text protocol (paper Table 1, Storage: "Memcache").
//!
//! A sans-io responder over [`crate::KvStore`]: feed it request
//! bytes as they arrive from any transport (TCP stream, vchan), take
//! response bytes back. The classic text commands the protocol's clients
//! use are supported: `get`, `set`, `delete`, `stats`, `version`.

use crate::kv::KvStore;

/// Incremental protocol state for one client connection.
#[derive(Debug)]
pub struct MemcacheSession {
    store: KvStore,
    buf: Vec<u8>,
    /// Pending `set` body: (key, bytes still expected).
    pending_set: Option<(Vec<u8>, usize)>,
}

impl MemcacheSession {
    /// A session over a shared store.
    pub fn new(store: KvStore) -> MemcacheSession {
        MemcacheSession {
            store,
            buf: Vec::new(),
            pending_set: None,
        }
    }

    /// Feeds received bytes; returns response bytes to transmit.
    pub fn feed(&mut self, data: &[u8]) -> Vec<u8> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            // A `set` command is followed by <bytes> of data + CRLF.
            if let Some((key, len)) = self.pending_set.clone() {
                if self.buf.len() < len + 2 {
                    break;
                }
                let body: Vec<u8> = self.buf.drain(..len).collect();
                self.buf.drain(..2.min(self.buf.len())); // trailing CRLF
                self.store.set(&key, body);
                out.extend_from_slice(b"STORED\r\n");
                self.pending_set = None;
                continue;
            }
            let Some(eol) = self.buf.windows(2).position(|w| w == b"\r\n") else {
                break;
            };
            let line: Vec<u8> = self.buf.drain(..eol).collect();
            self.buf.drain(..2);
            out.extend(self.dispatch(&line));
        }
        out
    }

    fn dispatch(&mut self, line: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(line);
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some("get") => {
                let mut out = Vec::new();
                for key in parts {
                    if let Some((value, version)) = self.store.get(key.as_bytes()) {
                        out.extend_from_slice(
                            format!("VALUE {key} 0 {} {version}\r\n", value.len()).as_bytes(),
                        );
                        out.extend_from_slice(&value);
                        out.extend_from_slice(b"\r\n");
                    }
                }
                out.extend_from_slice(b"END\r\n");
                out
            }
            Some("set") => {
                // set <key> <flags> <exptime> <bytes>
                let key = parts.next().map(|k| k.as_bytes().to_vec());
                let bytes = parts.nth(2).and_then(|b| b.parse::<usize>().ok());
                match (key, bytes) {
                    (Some(key), Some(len)) if len <= 1 << 20 => {
                        self.pending_set = Some((key, len));
                        Vec::new() // reply comes after the body
                    }
                    _ => b"CLIENT_ERROR bad command line\r\n".to_vec(),
                }
            }
            Some("delete") => match parts.next() {
                Some(key) if self.store.delete(key.as_bytes()) => b"DELETED\r\n".to_vec(),
                Some(_) => b"NOT_FOUND\r\n".to_vec(),
                None => b"CLIENT_ERROR bad command line\r\n".to_vec(),
            },
            Some("stats") => {
                let st = self.store.stats();
                format!(
                    "STAT get_hits {}\r\nSTAT get_misses {}\r\nSTAT cmd_set {}\r\nSTAT curr_items {}\r\nEND\r\n",
                    st.hits,
                    st.misses,
                    st.sets,
                    self.store.len()
                )
                .into_bytes()
            }
            Some("version") => b"VERSION mirage-rs 0.1\r\n".to_vec(),
            Some("quit") => Vec::new(),
            _ => b"ERROR\r\n".to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(session: &mut MemcacheSession, input: &str) -> String {
        String::from_utf8(session.feed(input.as_bytes())).expect("utf8 responses")
    }

    #[test]
    fn set_get_delete_cycle() {
        let mut s = MemcacheSession::new(KvStore::new());
        assert_eq!(
            roundtrip(&mut s, "set greeting 0 0 5\r\nhello\r\n"),
            "STORED\r\n"
        );
        let got = roundtrip(&mut s, "get greeting\r\n");
        assert!(got.starts_with("VALUE greeting 0 5"), "{got}");
        assert!(got.contains("hello\r\nEND\r\n"));
        assert_eq!(roundtrip(&mut s, "delete greeting\r\n"), "DELETED\r\n");
        assert_eq!(roundtrip(&mut s, "delete greeting\r\n"), "NOT_FOUND\r\n");
        assert_eq!(roundtrip(&mut s, "get greeting\r\n"), "END\r\n");
    }

    #[test]
    fn multi_key_get() {
        let store = KvStore::new();
        store.set(b"a", b"1".to_vec());
        store.set(b"c", b"3".to_vec());
        let mut s = MemcacheSession::new(store);
        let got = roundtrip(&mut s, "get a b c\r\n");
        assert!(got.contains("VALUE a"), "{got}");
        assert!(!got.contains("VALUE b"));
        assert!(got.contains("VALUE c"));
        assert!(got.ends_with("END\r\n"));
    }

    #[test]
    fn chunked_arrival_is_handled() {
        let mut s = MemcacheSession::new(KvStore::new());
        let full = b"set k 0 0 8\r\n01234567\r\nget k\r\n";
        let mut out = Vec::new();
        for chunk in full.chunks(3) {
            out.extend(s.feed(chunk));
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("STORED\r\n"));
        assert!(text.contains("01234567"));
    }

    #[test]
    fn binary_safe_values() {
        let mut s = MemcacheSession::new(KvStore::new());
        let mut req = b"set blob 0 0 4\r\n".to_vec();
        req.extend_from_slice(&[0x00, 0xFF, 0x0D, 0x0A]); // includes CRLF bytes
        req.extend_from_slice(b"\r\n");
        let out = s.feed(&req);
        assert_eq!(out, b"STORED\r\n");
        let out = s.feed(b"get blob\r\n");
        assert!(out
            .windows(4)
            .any(|w| w == [0x00, 0xFF, 0x0D, 0x0A]));
    }

    #[test]
    fn garbage_and_oversize_rejected() {
        let mut s = MemcacheSession::new(KvStore::new());
        assert_eq!(roundtrip(&mut s, "frobnicate\r\n"), "ERROR\r\n");
        assert!(roundtrip(&mut s, "set k 0 0 notanumber\r\n").starts_with("CLIENT_ERROR"));
        assert!(roundtrip(&mut s, "set k 0 0 99999999\r\n").starts_with("CLIENT_ERROR"));
    }

    #[test]
    fn stats_and_version_respond() {
        let mut s = MemcacheSession::new(KvStore::new());
        roundtrip(&mut s, "set x 0 0 1\r\ny\r\n");
        roundtrip(&mut s, "get x\r\n");
        roundtrip(&mut s, "get missing\r\n");
        let stats = roundtrip(&mut s, "stats\r\n");
        assert!(stats.contains("STAT get_hits 1"), "{stats}");
        assert!(stats.contains("STAT get_misses 1"));
        assert!(stats.contains("STAT curr_items 1"));
        assert!(roundtrip(&mut s, "version\r\n").starts_with("VERSION"));
    }
}
