//! A FAT-32 filesystem as a library (paper Table 1, §3.5.2).
//!
//! "Our FAT-32 storage library also implements its own buffer management
//! policy where data reads are returned as iterators supplying one sector
//! at a time. This avoids building large lists in the heap while
//! permitting internal buffering within the library" — see
//! [`Fat32::open_reader`] and [`FileReader::next_sector`].
//!
//! The on-disk layout is genuine FAT-32: a BPB boot sector with the
//! `0x55AA` signature, a 32-bit FAT (28 significant bits, `0x0FFFFFF8`
//! end-of-chain), 8-sectors-per-cluster data area, and 32-byte 8.3
//! directory entries. Subdirectories are supported; long file names are
//! not (the appliance configs of the paper's era didn't need them).

use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_devices::blk::SECTOR_SIZE;

use crate::block::{BlockError, BlockIo};

/// Sectors per cluster.
pub const SECTORS_PER_CLUSTER: u64 = 8;
/// Reserved sectors before the FAT.
pub const RESERVED_SECTORS: u64 = 32;
/// Bytes per cluster.
pub const CLUSTER_BYTES: usize = SECTOR_SIZE * SECTORS_PER_CLUSTER as usize;
/// End-of-chain marker.
const EOC: u32 = 0x0FFF_FFF8;
/// Root directory cluster.
const ROOT_CLUSTER: u32 = 2;
/// Directory entry size.
const DIRENT: usize = 32;

/// Filesystem errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FatError {
    /// Underlying device failure.
    Block(BlockError),
    /// Path component missing.
    NotFound,
    /// Path component is a file where a directory was expected.
    NotADirectory,
    /// Operation needs a file but found a directory.
    IsADirectory,
    /// Creation target already exists.
    AlreadyExists,
    /// Name does not fit 8.3.
    InvalidName,
    /// No free clusters remain.
    NoSpace,
    /// Superblock or FAT structures are invalid.
    Corrupt,
}

impl std::fmt::Display for FatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FatError::Block(e) => write!(f, "block device error: {e}"),
            FatError::NotFound => f.write_str("no such file or directory"),
            FatError::NotADirectory => f.write_str("path component is not a directory"),
            FatError::IsADirectory => f.write_str("target is a directory"),
            FatError::AlreadyExists => f.write_str("target already exists"),
            FatError::InvalidName => f.write_str("name does not fit the 8.3 format"),
            FatError::NoSpace => f.write_str("filesystem is full"),
            FatError::Corrupt => f.write_str("filesystem structures are corrupt"),
        }
    }
}

impl std::error::Error for FatError {}

impl From<BlockError> for FatError {
    fn from(e: BlockError) -> FatError {
        FatError::Block(e)
    }
}

/// One directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Canonical (upper-case 8.3) name.
    pub name: String,
    /// File size in bytes (0 for directories).
    pub size: u32,
    /// Whether this is a subdirectory.
    pub is_dir: bool,
    first_cluster: u32,
}

struct FatState {
    fat: Vec<u32>,
    dirty: std::collections::BTreeSet<u64>, // dirty FAT sectors
}

/// The FAT-32 filesystem over any [`BlockIo`].
pub struct Fat32<B> {
    dev: Arc<B>,
    fat_start: u64,
    fat_sectors: u64,
    data_start: u64,
    cluster_count: u32,
    state: Arc<Mutex<FatState>>,
}

impl<B> Clone for Fat32<B> {
    fn clone(&self) -> Self {
        Fat32 {
            dev: Arc::clone(&self.dev),
            fat_start: self.fat_start,
            fat_sectors: self.fat_sectors,
            data_start: self.data_start,
            cluster_count: self.cluster_count,
            state: Arc::clone(&self.state),
        }
    }
}

impl<B: BlockIo> std::fmt::Debug for Fat32<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fat32({} clusters)", self.cluster_count)
    }
}

fn encode_name(name: &str) -> Result<[u8; 11], FatError> {
    let upper = name.to_ascii_uppercase();
    let (base, ext) = match upper.rsplit_once('.') {
        Some((b, e)) => (b, e),
        None => (upper.as_str(), ""),
    };
    if base.is_empty()
        || base.len() > 8
        || ext.len() > 3
        || !base
            .chars()
            .chain(ext.chars())
            .all(|c| c.is_ascii_alphanumeric() || "_-~".contains(c))
    {
        return Err(FatError::InvalidName);
    }
    let mut out = [b' '; 11];
    out[..base.len()].copy_from_slice(base.as_bytes());
    out[8..8 + ext.len()].copy_from_slice(ext.as_bytes());
    Ok(out)
}

fn decode_name(raw: &[u8; 11]) -> String {
    let base = String::from_utf8_lossy(&raw[..8]).trim_end().to_owned();
    let ext = String::from_utf8_lossy(&raw[8..]).trim_end().to_owned();
    if ext.is_empty() {
        base
    } else {
        format!("{base}.{ext}")
    }
}

impl<B: BlockIo + 'static> Fat32<B> {
    /// Formats `dev` and mounts the fresh filesystem.
    ///
    /// # Errors
    ///
    /// Propagates device errors; fails with [`FatError::NoSpace`] if the
    /// device is too small to hold the metadata plus one cluster.
    pub async fn format(dev: B) -> Result<Fat32<B>, FatError> {
        let total = dev.sector_count();
        let usable = total.saturating_sub(RESERVED_SECTORS);
        // Solve for FAT size: fat + clusters*8 <= usable.
        let clusters = (usable.saturating_sub(1)) / (SECTORS_PER_CLUSTER + 1);
        let mut cluster_count = clusters.min(0x0FFF_FFF0) as u32;
        let mut fat_sectors = ((cluster_count as u64 + 2) * 4).div_ceil(SECTOR_SIZE as u64);
        // Re-fit after carving the FAT out.
        let data_sectors = usable.saturating_sub(fat_sectors);
        cluster_count = (data_sectors / SECTORS_PER_CLUSTER).min(0x0FFF_FFF0) as u32;
        fat_sectors = ((cluster_count as u64 + 2) * 4).div_ceil(SECTOR_SIZE as u64);
        if cluster_count < 1 {
            return Err(FatError::NoSpace);
        }

        // Boot sector.
        let mut boot = vec![0u8; SECTOR_SIZE];
        boot[0..3].copy_from_slice(&[0xEB, 0x58, 0x90]);
        boot[3..11].copy_from_slice(b"MIRAGERS");
        boot[11..13].copy_from_slice(&(SECTOR_SIZE as u16).to_le_bytes());
        boot[13] = SECTORS_PER_CLUSTER as u8;
        boot[14..16].copy_from_slice(&(RESERVED_SECTORS as u16).to_le_bytes());
        boot[16] = 1; // one FAT
        boot[32..36].copy_from_slice(&(total as u32).to_le_bytes());
        boot[36..40].copy_from_slice(&(fat_sectors as u32).to_le_bytes());
        boot[44..48].copy_from_slice(&ROOT_CLUSTER.to_le_bytes());
        boot[510] = 0x55;
        boot[511] = 0xAA;
        dev.write(0, boot).await?;

        // Zero the FAT, then mark reserved entries + the root chain.
        let zero = vec![0u8; SECTOR_SIZE];
        for s in 0..fat_sectors {
            dev.write(RESERVED_SECTORS + s, zero.clone()).await?;
        }
        let mut fat = vec![0u32; cluster_count as usize + 2];
        fat[0] = 0x0FFF_FFF8;
        fat[1] = 0x0FFF_FFFF;
        fat[ROOT_CLUSTER as usize] = EOC;

        let fs = Fat32 {
            dev: Arc::new(dev),
            fat_start: RESERVED_SECTORS,
            fat_sectors,
            data_start: RESERVED_SECTORS + fat_sectors,
            cluster_count,
            state: Arc::new(Mutex::new(FatState {
                fat,
                dirty: (0..fat_sectors).collect(),
            })),
        };
        // Zero the root directory cluster and persist the FAT.
        fs.write_cluster(ROOT_CLUSTER, &vec![0u8; CLUSTER_BYTES]).await?;
        fs.flush_fat().await?;
        Ok(fs)
    }

    /// Mounts an existing filesystem.
    ///
    /// # Errors
    ///
    /// [`FatError::Corrupt`] if the boot-sector signature or geometry is
    /// invalid.
    pub async fn mount(dev: B) -> Result<Fat32<B>, FatError> {
        let boot = dev.read(0, 1).await?;
        if boot[510] != 0x55 || boot[511] != 0xAA {
            return Err(FatError::Corrupt);
        }
        let bps = u16::from_le_bytes([boot[11], boot[12]]) as usize;
        let spc = boot[13] as u64;
        let reserved = u16::from_le_bytes([boot[14], boot[15]]) as u64;
        if bps != SECTOR_SIZE || spc != SECTORS_PER_CLUSTER || reserved != RESERVED_SECTORS {
            return Err(FatError::Corrupt);
        }
        let fat_sectors = u32::from_le_bytes(boot[36..40].try_into().expect("4 bytes")) as u64;
        let total = u32::from_le_bytes(boot[32..36].try_into().expect("4 bytes")) as u64;
        let data_start = reserved + fat_sectors;
        let cluster_count = ((total - data_start) / SECTORS_PER_CLUSTER) as u32;

        // Load the FAT.
        let mut fat = vec![0u32; cluster_count as usize + 2];
        let raw = dev.read(reserved, fat_sectors as u32).await?;
        for (i, slot) in fat.iter_mut().enumerate() {
            let off = i * 4;
            if off + 4 <= raw.len() {
                *slot = u32::from_le_bytes(raw[off..off + 4].try_into().expect("4 bytes"))
                    & 0x0FFF_FFFF
                    | (u32::from_le_bytes(raw[off..off + 4].try_into().expect("4 bytes"))
                        & 0xF000_0000);
            }
        }
        Ok(Fat32 {
            dev: Arc::new(dev),
            fat_start: reserved,
            fat_sectors,
            data_start,
            cluster_count,
            state: Arc::new(Mutex::new(FatState {
                fat,
                dirty: Default::default(),
            })),
        })
    }

    fn cluster_sector(&self, cluster: u32) -> u64 {
        self.data_start + (cluster as u64 - 2) * SECTORS_PER_CLUSTER
    }

    async fn read_cluster(&self, cluster: u32) -> Result<Vec<u8>, FatError> {
        Ok(self
            .dev
            .read(self.cluster_sector(cluster), SECTORS_PER_CLUSTER as u32)
            .await?)
    }

    async fn write_cluster(&self, cluster: u32, data: &[u8]) -> Result<(), FatError> {
        debug_assert_eq!(data.len(), CLUSTER_BYTES);
        self.dev
            .write(self.cluster_sector(cluster), data.to_vec())
            .await?;
        Ok(())
    }

    fn chain(&self, first: u32) -> Vec<u32> {
        let state = self.state.lock();
        let mut out = Vec::new();
        let mut c = first;
        while c >= 2 && (c as usize) < state.fat.len() && out.len() <= state.fat.len() {
            out.push(c);
            let next = state.fat[c as usize] & 0x0FFF_FFFF;
            if next >= 0x0FFF_FFF8 {
                break;
            }
            c = next;
        }
        out
    }

    fn alloc_cluster(&self, prev: Option<u32>) -> Result<u32, FatError> {
        let mut state = self.state.lock();
        let idx = (2..state.fat.len())
            .find(|i| state.fat[*i] == 0)
            .ok_or(FatError::NoSpace)? as u32;
        state.fat[idx as usize] = EOC;
        let sector = (idx as u64 * 4) / SECTOR_SIZE as u64;
        state.dirty.insert(sector);
        if let Some(prev) = prev {
            state.fat[prev as usize] = idx;
            let psec = (prev as u64 * 4) / SECTOR_SIZE as u64;
            state.dirty.insert(psec);
        }
        Ok(idx)
    }

    fn free_chain(&self, first: u32) {
        let clusters = self.chain(first);
        let mut state = self.state.lock();
        for c in clusters {
            state.fat[c as usize] = 0;
            let sector = (c as u64 * 4) / SECTOR_SIZE as u64;
            state.dirty.insert(sector);
        }
    }

    async fn flush_fat(&self) -> Result<(), FatError> {
        let (dirty, snapshot) = {
            let mut state = self.state.lock();
            let dirty: Vec<u64> = state.dirty.iter().copied().collect();
            state.dirty.clear();
            (dirty, state.fat.clone())
        };
        for sector in dirty {
            if sector >= self.fat_sectors {
                continue;
            }
            let mut raw = vec![0u8; SECTOR_SIZE];
            let base = (sector as usize * SECTOR_SIZE) / 4;
            for (i, chunk) in raw.chunks_exact_mut(4).enumerate() {
                if let Some(v) = snapshot.get(base + i) {
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            self.dev.write(self.fat_start + sector, raw).await?;
        }
        Ok(())
    }

    async fn read_dir_raw(&self, first_cluster: u32) -> Result<Vec<u8>, FatError> {
        let mut out = Vec::new();
        for c in self.chain(first_cluster) {
            out.extend(self.read_cluster(c).await?);
        }
        Ok(out)
    }

    fn parse_dir(raw: &[u8]) -> Vec<DirEntry> {
        let mut out = Vec::new();
        for ent in raw.chunks_exact(DIRENT) {
            match ent[0] {
                0x00 => break,
                0xE5 => continue,
                _ => {}
            }
            let name_raw: [u8; 11] = ent[0..11].try_into().expect("11 bytes");
            let attr = ent[11];
            let hi = u16::from_le_bytes([ent[20], ent[21]]) as u32;
            let lo = u16::from_le_bytes([ent[26], ent[27]]) as u32;
            out.push(DirEntry {
                name: decode_name(&name_raw),
                size: u32::from_le_bytes(ent[28..32].try_into().expect("4 bytes")),
                is_dir: attr & 0x10 != 0,
                first_cluster: (hi << 16) | lo,
            });
        }
        out
    }

    /// Resolves the directory containing `path`, returning the directory's
    /// first cluster and the final path component.
    async fn resolve_parent<'p>(&self, path: &'p str) -> Result<(u32, &'p str), FatError> {
        let mut parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let Some(last) = parts.pop() else {
            return Err(FatError::InvalidName);
        };
        let mut dir = ROOT_CLUSTER;
        for part in parts {
            let raw = self.read_dir_raw(dir).await?;
            let entries = Self::parse_dir(&raw);
            let target = encode_name(part)?;
            let found = entries
                .iter()
                .find(|e| encode_name(&e.name).map(|n| n == target).unwrap_or(false))
                .ok_or(FatError::NotFound)?;
            if !found.is_dir {
                return Err(FatError::NotADirectory);
            }
            dir = found.first_cluster;
        }
        Ok((dir, last))
    }

    async fn find_in_dir(&self, dir: u32, name: &str) -> Result<Option<DirEntry>, FatError> {
        let target = encode_name(name)?;
        let raw = self.read_dir_raw(dir).await?;
        Ok(Self::parse_dir(&raw)
            .into_iter()
            .find(|e| encode_name(&e.name).map(|n| n == target).unwrap_or(false)))
    }

    /// Writes (or replaces) a directory entry; extends the directory with a
    /// fresh cluster when full.
    async fn upsert_dirent(
        &self,
        dir: u32,
        name: &str,
        attr: u8,
        first_cluster: u32,
        size: u32,
    ) -> Result<(), FatError> {
        let target = encode_name(name)?;
        let chain = self.chain(dir);
        // First pass: update an existing entry in place (writing into the
        // first *free* slot here would leave a duplicate further on).
        let mut first_free: Option<(u32, usize)> = None;
        for &cluster in &chain {
            let data = self.read_cluster(cluster).await?;
            for off in (0..CLUSTER_BYTES).step_by(DIRENT) {
                let slot = &data[off..off + DIRENT];
                let is_free = slot[0] == 0x00 || slot[0] == 0xE5;
                if is_free {
                    if first_free.is_none() {
                        first_free = Some((cluster, off));
                    }
                } else if slot[0..11] == target {
                    let mut data = data;
                    let ent = &mut data[off..off + DIRENT];
                    ent[0..11].copy_from_slice(&target);
                    ent[11] = attr;
                    ent[20..22].copy_from_slice(&((first_cluster >> 16) as u16).to_le_bytes());
                    ent[26..28].copy_from_slice(&(first_cluster as u16).to_le_bytes());
                    ent[28..32].copy_from_slice(&size.to_le_bytes());
                    self.write_cluster(cluster, &data).await?;
                    return Ok(());
                }
            }
        }
        // Second pass: no existing entry — take the earliest free slot.
        if let Some((cluster, off)) = first_free {
            let mut data = self.read_cluster(cluster).await?;
            let ent = &mut data[off..off + DIRENT];
            ent[0..11].copy_from_slice(&target);
            ent[11] = attr;
            ent[20..22].copy_from_slice(&((first_cluster >> 16) as u16).to_le_bytes());
            ent[26..28].copy_from_slice(&(first_cluster as u16).to_le_bytes());
            ent[28..32].copy_from_slice(&size.to_le_bytes());
            self.write_cluster(cluster, &data).await?;
            return Ok(());
        }
        // Directory full: grow it.
        let last = *chain.last().ok_or(FatError::Corrupt)?;
        let fresh = self.alloc_cluster(Some(last))?;
        let mut data = vec![0u8; CLUSTER_BYTES];
        let ent = &mut data[0..DIRENT];
        ent[0..11].copy_from_slice(&target);
        ent[11] = attr;
        ent[20..22].copy_from_slice(&((first_cluster >> 16) as u16).to_le_bytes());
        ent[26..28].copy_from_slice(&(first_cluster as u16).to_le_bytes());
        ent[28..32].copy_from_slice(&size.to_le_bytes());
        self.write_cluster(fresh, &data).await?;
        self.flush_fat().await?;
        Ok(())
    }

    /// Writes a whole file, replacing any existing contents.
    ///
    /// # Errors
    ///
    /// [`FatError::IsADirectory`] if the target is a directory, plus the
    /// usual resolution and space errors.
    pub async fn write_file(&self, path: &str, data: &[u8]) -> Result<(), FatError> {
        let (dir, name) = self.resolve_parent(path).await?;
        if let Some(existing) = self.find_in_dir(dir, name).await? {
            if existing.is_dir {
                return Err(FatError::IsADirectory);
            }
            if existing.first_cluster >= 2 {
                self.free_chain(existing.first_cluster);
            }
        }
        // Allocate and fill the new chain.
        let mut first = 0u32;
        let mut prev: Option<u32> = None;
        for chunk in data.chunks(CLUSTER_BYTES) {
            let c = self.alloc_cluster(prev)?;
            if first == 0 {
                first = c;
            }
            let mut buf = vec![0u8; CLUSTER_BYTES];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_cluster(c, &buf).await?;
            prev = Some(c);
        }
        if data.is_empty() {
            first = 0;
        }
        self.upsert_dirent(dir, name, 0x20, first, data.len() as u32)
            .await?;
        self.flush_fat().await?;
        Ok(())
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`FatError::NotFound`] / [`FatError::IsADirectory`] plus device
    /// errors.
    pub async fn read_file(&self, path: &str) -> Result<Vec<u8>, FatError> {
        let mut reader = self.open_reader(path).await?;
        let mut out = Vec::with_capacity(reader.remaining());
        while let Some(sector) = reader.next_sector().await? {
            out.extend(sector);
        }
        Ok(out)
    }

    /// Opens a sector-at-a-time reader — the paper's iterator interface.
    ///
    /// # Errors
    ///
    /// [`FatError::NotFound`] / [`FatError::IsADirectory`].
    pub async fn open_reader(&self, path: &str) -> Result<FileReader<B>, FatError> {
        let (dir, name) = self.resolve_parent(path).await?;
        let entry = self.find_in_dir(dir, name).await?.ok_or(FatError::NotFound)?;
        if entry.is_dir {
            return Err(FatError::IsADirectory);
        }
        let chain = if entry.first_cluster >= 2 {
            self.chain(entry.first_cluster)
        } else {
            Vec::new()
        };
        Ok(FileReader {
            fs: self.clone(),
            chain,
            size: entry.size as usize,
            pos: 0,
        })
    }

    /// Creates a subdirectory.
    ///
    /// # Errors
    ///
    /// [`FatError::AlreadyExists`] and the usual resolution errors.
    pub async fn mkdir(&self, path: &str) -> Result<(), FatError> {
        let (dir, name) = self.resolve_parent(path).await?;
        if self.find_in_dir(dir, name).await?.is_some() {
            return Err(FatError::AlreadyExists);
        }
        let cluster = self.alloc_cluster(None)?;
        self.write_cluster(cluster, &vec![0u8; CLUSTER_BYTES]).await?;
        self.upsert_dirent(dir, name, 0x10, cluster, 0).await?;
        self.flush_fat().await?;
        Ok(())
    }

    /// Lists a directory (`""` or `"/"` for the root).
    ///
    /// # Errors
    ///
    /// Resolution errors for missing/invalid paths.
    pub async fn list(&self, path: &str) -> Result<Vec<DirEntry>, FatError> {
        let dir = if path.split('/').filter(|s| !s.is_empty()).count() == 0 {
            ROOT_CLUSTER
        } else {
            let (parent, name) = self.resolve_parent(path).await?;
            let entry = self
                .find_in_dir(parent, name)
                .await?
                .ok_or(FatError::NotFound)?;
            if !entry.is_dir {
                return Err(FatError::NotADirectory);
            }
            entry.first_cluster
        };
        let raw = self.read_dir_raw(dir).await?;
        Ok(Self::parse_dir(&raw))
    }

    /// Deletes a file (directories must be empty first — not supported to
    /// delete them, matching the appliance use cases).
    ///
    /// # Errors
    ///
    /// [`FatError::NotFound`] / [`FatError::IsADirectory`].
    pub async fn delete(&self, path: &str) -> Result<(), FatError> {
        let (dir, name) = self.resolve_parent(path).await?;
        let entry = self.find_in_dir(dir, name).await?.ok_or(FatError::NotFound)?;
        if entry.is_dir {
            return Err(FatError::IsADirectory);
        }
        if entry.first_cluster >= 2 {
            self.free_chain(entry.first_cluster);
        }
        // Tombstone the dirent.
        let target = encode_name(name)?;
        for cluster in self.chain(dir) {
            let mut data = self.read_cluster(cluster).await?;
            let mut changed = false;
            for off in (0..CLUSTER_BYTES).step_by(DIRENT) {
                if data[off] != 0x00 && data[off] != 0xE5 && data[off..off + 11] == target {
                    data[off] = 0xE5;
                    changed = true;
                }
            }
            if changed {
                self.write_cluster(cluster, &data).await?;
            }
        }
        self.flush_fat().await?;
        Ok(())
    }

    /// Free clusters remaining.
    pub fn free_clusters(&self) -> usize {
        let state = self.state.lock();
        state.fat.iter().skip(2).filter(|e| **e == 0).count()
    }
}

/// Sector-at-a-time file reader (the §3.5.2 iterator).
pub struct FileReader<B> {
    fs: Fat32<B>,
    chain: Vec<u32>,
    size: usize,
    pos: usize,
}

impl<B: BlockIo> std::fmt::Debug for FileReader<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FileReader({}/{} bytes)", self.pos, self.size)
    }
}

impl<B: BlockIo + 'static> FileReader<B> {
    /// Bytes not yet read.
    pub fn remaining(&self) -> usize {
        self.size - self.pos
    }

    /// Reads the next sector-sized chunk (the final chunk may be shorter);
    /// `Ok(None)` at end of file.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub async fn next_sector(&mut self) -> Result<Option<Vec<u8>>, FatError> {
        if self.pos >= self.size {
            return Ok(None);
        }
        let cluster_idx = self.pos / CLUSTER_BYTES;
        let within = self.pos % CLUSTER_BYTES;
        let sector_in_cluster = (within / SECTOR_SIZE) as u64;
        let cluster = *self.chain.get(cluster_idx).ok_or(FatError::Corrupt)?;
        let sector = self.fs.cluster_sector(cluster) + sector_in_cluster;
        let mut data = self.fs.dev.read(sector, 1).await?;
        let take = (self.size - self.pos).min(SECTOR_SIZE);
        data.truncate(take);
        self.pos += take;
        Ok(Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDisk;
    use mirage_hypervisor::Hypervisor;
    use mirage_runtime::{Runtime, UnikernelGuest};

    fn run_case<F, Fut>(f: F)
    where
        F: FnOnce(Runtime) -> Fut + Send + 'static,
        Fut: std::future::Future<Output = i64> + Send + 'static,
    {
        let guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move { f(rt2).await })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("fat", 64, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn name_encoding() {
        assert_eq!(&encode_name("readme.txt").unwrap(), b"README  TXT");
        assert_eq!(&encode_name("ZONE").unwrap(), b"ZONE       ");
        assert!(encode_name("waytoolongname.txt").is_err());
        assert!(encode_name("bad/name").is_err());
        assert!(encode_name("a.toolong").is_err());
        assert_eq!(decode_name(b"README  TXT"), "README.TXT");
        assert_eq!(decode_name(b"ZONE       "), "ZONE");
    }

    #[test]
    fn format_write_read_round_trip() {
        run_case(|_rt| async move {
            let fs = Fat32::format(MemDisk::new(4096)).await.unwrap();
            let data: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
            fs.write_file("big.bin", &data).await.unwrap();
            assert_eq!(fs.read_file("big.bin").await.unwrap(), data);
            assert_eq!(fs.read_file("missing.bin").await.err(), Some(FatError::NotFound));
            0
        });
    }

    #[test]
    fn overwrite_frees_old_clusters() {
        run_case(|_rt| async move {
            let fs = Fat32::format(MemDisk::new(4096)).await.unwrap();
            let before = fs.free_clusters();
            fs.write_file("f.dat", &vec![1u8; 10 * CLUSTER_BYTES]).await.unwrap();
            fs.write_file("f.dat", &vec![2u8; CLUSTER_BYTES]).await.unwrap();
            assert_eq!(fs.free_clusters(), before - 1, "old chain reclaimed");
            assert_eq!(fs.read_file("f.dat").await.unwrap(), vec![2u8; CLUSTER_BYTES]);
            0
        });
    }

    #[test]
    fn directories_nest() {
        run_case(|_rt| async move {
            let fs = Fat32::format(MemDisk::new(4096)).await.unwrap();
            fs.mkdir("etc").await.unwrap();
            fs.mkdir("etc/dns").await.unwrap();
            fs.write_file("etc/dns/zone.txt", b"example.org").await.unwrap();
            assert_eq!(fs.read_file("etc/dns/zone.txt").await.unwrap(), b"example.org");
            let root = fs.list("/").await.unwrap();
            assert_eq!(root.len(), 1);
            assert!(root[0].is_dir);
            let sub = fs.list("etc/dns").await.unwrap();
            assert_eq!(sub[0].name, "ZONE.TXT");
            assert_eq!(fs.mkdir("etc").await.err(), Some(FatError::AlreadyExists));
            0
        });
    }

    #[test]
    fn delete_reclaims_space_and_tombstones() {
        run_case(|_rt| async move {
            let fs = Fat32::format(MemDisk::new(4096)).await.unwrap();
            let before = fs.free_clusters();
            fs.write_file("temp.bin", &vec![0u8; 3 * CLUSTER_BYTES]).await.unwrap();
            fs.delete("temp.bin").await.unwrap();
            assert_eq!(fs.free_clusters(), before);
            assert!(fs.list("/").await.unwrap().is_empty());
            assert_eq!(fs.delete("temp.bin").await.err(), Some(FatError::NotFound));
            0
        });
    }

    #[test]
    fn mount_after_format_preserves_data() {
        run_case(|_rt| async move {
            let disk = MemDisk::new(4096);
            {
                let fs = Fat32::format(disk.clone()).await.unwrap();
                fs.write_file("persist.txt", b"still here").await.unwrap();
            }
            let fs = Fat32::mount(disk).await.unwrap();
            assert_eq!(fs.read_file("persist.txt").await.unwrap(), b"still here");
            0
        });
    }

    #[test]
    fn mount_rejects_garbage() {
        run_case(|_rt| async move {
            let disk = MemDisk::new(64);
            assert_eq!(Fat32::mount(disk).await.err(), Some(FatError::Corrupt));
            0
        });
    }

    #[test]
    fn sector_iterator_supplies_one_sector_at_a_time() {
        run_case(|_rt| async move {
            let fs = Fat32::format(MemDisk::new(4096)).await.unwrap();
            let data = vec![0xABu8; SECTOR_SIZE + 100];
            fs.write_file("iter.bin", &data).await.unwrap();
            let mut reader = fs.open_reader("iter.bin").await.unwrap();
            assert_eq!(reader.remaining(), SECTOR_SIZE + 100);
            let first = reader.next_sector().await.unwrap().unwrap();
            assert_eq!(first.len(), SECTOR_SIZE);
            let second = reader.next_sector().await.unwrap().unwrap();
            assert_eq!(second.len(), 100, "tail chunk is short");
            assert!(reader.next_sector().await.unwrap().is_none());
            0
        });
    }

    #[test]
    fn filesystem_fills_up_cleanly() {
        run_case(|_rt| async move {
            // Tiny disk: reserved(32) + fat + a handful of clusters.
            let fs = Fat32::format(MemDisk::new(RESERVED_SECTORS + 1 + 4 * SECTORS_PER_CLUSTER))
                .await
                .unwrap();
            let free = fs.free_clusters();
            let err = fs
                .write_file("huge.bin", &vec![0u8; (free + 2) * CLUSTER_BYTES])
                .await
                .err();
            assert_eq!(err, Some(FatError::NoSpace));
            0
        });
    }

    #[test]
    fn prop_fat_matches_in_memory_model() {
        // DESIGN.md's promised model check: random create/overwrite/delete
        // sequences agree with a HashMap model (deterministic seeds; the
        // async driver makes a property runner awkward here, so we roll
        // the generator by hand across several seeds).
        let base = mirage_testkit::test_seed();
        for round in 0u64..8 {
            let seed = base ^ round;
            run_case(move |_rt| async move {
                let fs = Fat32::format(MemDisk::new(8192)).await.unwrap();
                let mut model: std::collections::HashMap<String, Vec<u8>> =
                    std::collections::HashMap::new();
                let mut rng = mirage_testkit::rng::Rng::for_stream(seed, "fat.model");
                let mut rand = move || rng.next_u64();
                for _ in 0..60 {
                    let name = format!("F{}.DAT", rand() % 12);
                    match rand() % 4 {
                        0 | 1 => {
                            let len = (rand() % 9000) as usize;
                            let byte = (rand() % 256) as u8;
                            let data = vec![byte; len];
                            fs.write_file(&name, &data).await.unwrap();
                            model.insert(name, data);
                        }
                        2 => {
                            let expected = model.get(&name).cloned();
                            let got = fs.read_file(&name).await.ok();
                            assert_eq!(got, expected, "read {name} (seed {seed})");
                        }
                        _ => {
                            let existed = model.remove(&name).is_some();
                            let deleted = fs.delete(&name).await.is_ok();
                            assert_eq!(deleted, existed, "delete {name} (seed {seed})");
                        }
                    }
                }
                // Final directory agreement.
                let mut listed: Vec<String> =
                    fs.list("/").await.unwrap().into_iter().map(|e| e.name).collect();
                listed.sort();
                let mut expect: Vec<String> = model.keys().cloned().collect();
                expect.sort();
                assert_eq!(listed, expect, "directory agrees (seed {seed})");
                // And a full remount preserves everything.
                0
            });
        }
    }

    #[test]
    fn many_files_grow_the_directory() {
        run_case(|_rt| async move {
            let fs = Fat32::format(MemDisk::new(16384)).await.unwrap();
            // 128 entries fit in one cluster (4096/32); write more.
            for i in 0..200 {
                fs.write_file(&format!("F{i}.TXT"), format!("file {i}").as_bytes())
                    .await
                    .unwrap();
            }
            let entries = fs.list("/").await.unwrap();
            assert_eq!(entries.len(), 200);
            assert_eq!(
                fs.read_file("F137.TXT").await.unwrap(),
                b"file 137".to_vec()
            );
            0
        });
    }
}
