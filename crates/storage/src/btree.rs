//! An append-only, copy-on-write B-tree — the "third-party copy-on-write
//! binary tree storage library" (Baardskeerder) the paper ported to Mirage
//! (§3.5.2) and used as the tweet store in the Figure 12 dynamic web
//! appliance.
//!
//! Every mutation copies the root-to-leaf path and appends the new nodes to
//! a log, finishing with a checksummed **commit record** pointing at the
//! new root. Crash recovery is a sequential scan: the last valid commit
//! wins, and a torn trailing write simply rolls back to the previous
//! commit. Reads are wait-free against concurrent writers because old
//! roots are immutable.
//!
//! Deletion removes keys without rebalancing (nodes may underflow); this
//! matches the log-structured design where space is reclaimed by
//! compaction ([`Tree::compact`]) rather than in-place merging.

use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use crate::block::{BlockError, BlockIo, BoxFuture};

/// Maximum keys per node before splitting.
const MAX_KEYS: usize = 16;

const TAG_LEAF: u8 = 1;
const TAG_NODE: u8 = 2;
const TAG_COMMIT: u8 = 3;

/// Errors from tree operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// Log device failure.
    Io(BlockError),
    /// A referenced record failed validation.
    Corrupt,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Io(e) => write!(f, "log i/o failure: {e}"),
            TreeError::Corrupt => f.write_str("tree record failed validation"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<BlockError> for TreeError {
    fn from(e: BlockError) -> TreeError {
        TreeError::Io(e)
    }
}

/// CRC-32 (IEEE), bitwise implementation — guards every log record.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------

/// An append-only byte log.
pub trait AppendLog: Send + Sync {
    /// Appends `data`, returning its byte offset.
    fn append(&self, data: Vec<u8>) -> BoxFuture<Result<u64, BlockError>>;

    /// Reads `len` bytes at `offset`.
    fn read_at(&self, offset: u64, len: usize) -> BoxFuture<Result<Vec<u8>, BlockError>>;

    /// Current end-of-log offset.
    fn tail(&self) -> u64;

    /// Truncates the log to `len` bytes (fault injection / compaction).
    fn truncate(&self, len: u64);
}

/// An in-memory log (tests and RAM-backed appliances).
#[derive(Clone, Default)]
pub struct MemLog {
    data: Arc<Mutex<Vec<u8>>>,
}

impl std::fmt::Debug for MemLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemLog({} bytes)", self.data.lock().len())
    }
}

impl MemLog {
    /// An empty log.
    pub fn new() -> MemLog {
        MemLog::default()
    }
}

impl AppendLog for MemLog {
    fn append(&self, data: Vec<u8>) -> BoxFuture<Result<u64, BlockError>> {
        let log = self.data.clone();
        Box::pin(async move {
            let mut log = log.lock();
            let off = log.len() as u64;
            log.extend(data);
            Ok(off)
        })
    }

    fn read_at(&self, offset: u64, len: usize) -> BoxFuture<Result<Vec<u8>, BlockError>> {
        let log = self.data.clone();
        Box::pin(async move {
            let log = log.lock();
            let start = offset as usize;
            if start + len > log.len() {
                return Err(BlockError::OutOfRange);
            }
            Ok(log[start..start + len].to_vec())
        })
    }

    fn tail(&self) -> u64 {
        self.data.lock().len() as u64
    }

    fn truncate(&self, len: u64) {
        self.data.lock().truncate(len as usize);
    }
}

/// A log over a [`BlockIo`] device (sector read-modify-write at the tail).
pub struct BlockLog<B> {
    dev: Arc<B>,
    len: Arc<Mutex<u64>>,
}

impl<B> Clone for BlockLog<B> {
    fn clone(&self) -> Self {
        BlockLog {
            dev: Arc::clone(&self.dev),
            len: Arc::clone(&self.len),
        }
    }
}

impl<B: BlockIo> std::fmt::Debug for BlockLog<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockLog({} bytes)", *self.len.lock())
    }
}

const SECTOR: usize = mirage_devices::blk::SECTOR_SIZE;

impl<B: BlockIo + 'static> BlockLog<B> {
    /// A fresh log over `dev` starting at length `len` (0 for new; pass a
    /// recovered length when remounting).
    pub fn new(dev: B, len: u64) -> BlockLog<B> {
        BlockLog {
            dev: Arc::new(dev),
            len: Arc::new(Mutex::new(len)),
        }
    }
}

impl<B: BlockIo + 'static> AppendLog for BlockLog<B> {
    fn append(&self, data: Vec<u8>) -> BoxFuture<Result<u64, BlockError>> {
        let dev = Arc::clone(&self.dev);
        let len = Arc::clone(&self.len);
        Box::pin(async move {
            let offset = *len.lock();
            let start_sector = offset / SECTOR as u64;
            let end = offset + data.len() as u64;
            let end_sector = end.div_ceil(SECTOR as u64);
            let span = (end_sector - start_sector) as u32;
            // Read-modify-write the covering sectors.
            let mut buf = dev.read(start_sector, span).await?;
            let within = (offset % SECTOR as u64) as usize;
            buf[within..within + data.len()].copy_from_slice(&data);
            dev.write(start_sector, buf).await?;
            *len.lock() = end;
            Ok(offset)
        })
    }

    fn read_at(&self, offset: u64, len: usize) -> BoxFuture<Result<Vec<u8>, BlockError>> {
        let dev = Arc::clone(&self.dev);
        let log_len = *self.len.lock();
        Box::pin(async move {
            if offset + len as u64 > log_len {
                return Err(BlockError::OutOfRange);
            }
            let start_sector = offset / SECTOR as u64;
            let end_sector = (offset + len as u64).div_ceil(SECTOR as u64);
            let raw = dev
                .read(start_sector, (end_sector - start_sector) as u32)
                .await?;
            let within = (offset % SECTOR as u64) as usize;
            Ok(raw[within..within + len].to_vec())
        })
    }

    fn tail(&self) -> u64 {
        *self.len.lock()
    }

    fn truncate(&self, len: u64) {
        let mut cur = self.len.lock();
        if len < *cur {
            *cur = len;
        }
    }
}

// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        vals: Vec<Vec<u8>>,
    },
    Internal {
        seps: Vec<Vec<u8>>,
        children: Vec<u64>,
    },
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn get_bytes(data: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes(data.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let out = data.get(*pos..*pos + len)?.to_vec();
    *pos += len;
    Some(out)
}

impl Node {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Node::Leaf { keys, vals } => {
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for (k, v) in keys.iter().zip(vals) {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
            }
            Node::Internal { seps, children } => {
                out.extend_from_slice(&(children.len() as u16).to_le_bytes());
                for c in children {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                for s in seps {
                    put_bytes(&mut out, s);
                }
            }
        }
        out
    }

    fn decode(tag: u8, data: &[u8]) -> Option<Node> {
        let mut pos = 0usize;
        let count = u16::from_le_bytes(data.get(0..2)?.try_into().ok()?) as usize;
        pos += 2;
        match tag {
            TAG_LEAF => {
                let mut keys = Vec::with_capacity(count);
                let mut vals = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(get_bytes(data, &mut pos)?);
                    vals.push(get_bytes(data, &mut pos)?);
                }
                Some(Node::Leaf { keys, vals })
            }
            TAG_NODE => {
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    children.push(u64::from_le_bytes(
                        data.get(pos..pos + 8)?.try_into().ok()?,
                    ));
                    pos += 8;
                }
                let mut seps = Vec::with_capacity(count.saturating_sub(1));
                for _ in 0..count.saturating_sub(1) {
                    seps.push(get_bytes(data, &mut pos)?);
                }
                Some(Node::Internal { seps, children })
            }
            _ => None,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Node::Leaf { .. } => TAG_LEAF,
            Node::Internal { .. } => TAG_NODE,
        }
    }
}

/// Tree statistics (Figure 12 harness introspection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeStats {
    /// Committed mutations.
    pub commits: u64,
    /// Nodes written (copy-on-write traffic).
    pub nodes_written: u64,
    /// Log bytes at last commit.
    pub log_bytes: u64,
}

/// The append-only B-tree over any [`AppendLog`].
pub struct Tree<L> {
    log: Arc<L>,
    root: Arc<Mutex<Option<u64>>>,
    generation: Arc<Mutex<u64>>,
    stats: Arc<Mutex<TreeStats>>,
}

impl<L> Clone for Tree<L> {
    fn clone(&self) -> Self {
        Tree {
            log: Arc::clone(&self.log),
            root: Arc::clone(&self.root),
            generation: Arc::clone(&self.generation),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl<L: AppendLog> std::fmt::Debug for Tree<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tree(root={:?})", *self.root.lock())
    }
}

fn record(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(9 + payload.len());
    rec.push(tag);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&crc32(&rec).to_le_bytes());
    rec
}

impl<L: AppendLog + 'static> Tree<L> {
    /// An empty tree over a fresh log.
    pub fn new(log: L) -> Tree<L> {
        Tree {
            log: Arc::new(log),
            root: Arc::new(Mutex::new(None)),
            generation: Arc::new(Mutex::new(0)),
            stats: Arc::new(Mutex::new(TreeStats::default())),
        }
    }

    /// Recovers a tree from an existing log by scanning for the last valid
    /// commit record; trailing torn writes are ignored.
    ///
    /// # Errors
    ///
    /// Device errors only — an empty or fully-torn log recovers to an
    /// empty tree.
    pub async fn recover(log: L) -> Result<Tree<L>, TreeError> {
        let tree = Tree::new(log);
        let tail = tree.log.tail();
        let mut pos = 0u64;
        let mut last_commit: Option<(u64, u64)> = None; // (root offset, generation)
        while pos + 9 <= tail {
            let header = tree.log.read_at(pos, 5).await?;
            let tag = header[0];
            let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as u64;
            let total = 5 + len + 4;
            if pos + total > tail || len > 1 << 24 {
                break; // torn tail
            }
            let rec = tree.log.read_at(pos, total as usize).await?;
            let body = &rec[..(5 + len) as usize];
            let stored = u32::from_le_bytes(rec[(5 + len) as usize..].try_into().expect("4"));
            if crc32(body) != stored {
                break; // corrupt record: stop scanning
            }
            if tag == TAG_COMMIT && len == 16 {
                let root = u64::from_le_bytes(rec[5..13].try_into().expect("8"));
                let generation = u64::from_le_bytes(rec[13..21].try_into().expect("8"));
                last_commit = Some((root, generation));
            }
            pos += total;
        }
        if let Some((root, generation)) = last_commit {
            *tree.root.lock() = Some(root);
            *tree.generation.lock() = generation;
        }
        Ok(tree)
    }

    async fn load(&self, offset: u64) -> Result<Node, TreeError> {
        let header = self.log.read_at(offset, 5).await?;
        let tag = header[0];
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
        let rec = self.log.read_at(offset, 5 + len + 4).await?;
        let stored = u32::from_le_bytes(rec[5 + len..].try_into().expect("4"));
        if crc32(&rec[..5 + len]) != stored {
            return Err(TreeError::Corrupt);
        }
        Node::decode(tag, &rec[5..5 + len]).ok_or(TreeError::Corrupt)
    }

    async fn store(&self, node: &Node) -> Result<u64, TreeError> {
        let payload = node.encode();
        let rec = record(node.tag(), &payload);
        self.stats.lock().nodes_written += 1;
        Ok(self.log.append(rec).await?)
    }

    async fn commit(&self, root: u64) -> Result<(), TreeError> {
        let generation = {
            let mut g = self.generation.lock();
            *g += 1;
            *g
        };
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&root.to_le_bytes());
        payload.extend_from_slice(&generation.to_le_bytes());
        self.log.append(record(TAG_COMMIT, &payload)).await?;
        *self.root.lock() = Some(root);
        let mut st = self.stats.lock();
        st.commits += 1;
        st.log_bytes = self.log.tail();
        Ok(())
    }

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// [`TreeError::Corrupt`] if a referenced record fails its checksum.
    pub async fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, TreeError> {
        let Some(mut at) = *self.root.lock() else {
            return Ok(None);
        };
        loop {
            match self.load(at).await? {
                Node::Leaf { keys, vals } => {
                    return Ok(keys
                        .iter()
                        .position(|k| k.as_slice() == key)
                        .map(|i| vals[i].clone()));
                }
                Node::Internal { seps, children } => {
                    let idx = seps.iter().take_while(|s| key >= s.as_slice()).count();
                    at = children[idx];
                }
            }
        }
    }

    /// Inserts or replaces a key.
    ///
    /// # Errors
    ///
    /// Propagates log failures; the tree is unchanged if the commit record
    /// never lands (crash atomicity).
    pub async fn set(&self, key: &[u8], value: &[u8]) -> Result<(), TreeError> {
        let root = *self.root.lock();
        let new_root = match root {
            None => {
                let leaf = Node::Leaf {
                    keys: vec![key.to_vec()],
                    vals: vec![value.to_vec()],
                };
                self.store(&leaf).await?
            }
            Some(at) => match self.insert_rec(at, key, value).await? {
                InsertResult::Single(off) => off,
                InsertResult::Split(left, sep, right) => {
                    self.store(&Node::Internal {
                        seps: vec![sep],
                        children: vec![left, right],
                    })
                    .await?
                }
            },
        };
        self.commit(new_root).await
    }

    fn insert_rec<'a>(
        &'a self,
        at: u64,
        key: &'a [u8],
        value: &'a [u8],
    ) -> BoxFuture<Result<InsertResult, TreeError>>
    where
        L: 'static,
    {
        let this = self.clone();
        let key = key.to_vec();
        let value = value.to_vec();
        Box::pin(async move {
            match this.load(at).await? {
                Node::Leaf { mut keys, mut vals } => {
                    match keys.binary_search_by(|k| k.as_slice().cmp(&key[..])) {
                        Ok(i) => vals[i] = value,
                        Err(i) => {
                            keys.insert(i, key);
                            vals.insert(i, value);
                        }
                    }
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let rkeys = keys.split_off(mid);
                        let rvals = vals.split_off(mid);
                        let sep = rkeys[0].clone();
                        let left = this.store(&Node::Leaf { keys, vals }).await?;
                        let right = this
                            .store(&Node::Leaf {
                                keys: rkeys,
                                vals: rvals,
                            })
                            .await?;
                        Ok(InsertResult::Split(left, sep, right))
                    } else {
                        Ok(InsertResult::Single(
                            this.store(&Node::Leaf { keys, vals }).await?,
                        ))
                    }
                }
                Node::Internal {
                    mut seps,
                    mut children,
                } => {
                    let idx = seps.iter().take_while(|s| key >= **s).count();
                    match this.insert_rec(children[idx], &key, &value).await? {
                        InsertResult::Single(off) => children[idx] = off,
                        InsertResult::Split(left, sep, right) => {
                            children[idx] = left;
                            children.insert(idx + 1, right);
                            seps.insert(idx, sep);
                        }
                    }
                    if children.len() > MAX_KEYS {
                        let mid = children.len() / 2;
                        let rchildren = children.split_off(mid);
                        let rseps = seps.split_off(mid);
                        let sep = seps.pop().expect("non-empty separators");
                        let left = this.store(&Node::Internal { seps, children }).await?;
                        let right = this
                            .store(&Node::Internal {
                                seps: rseps,
                                children: rchildren,
                            })
                            .await?;
                        Ok(InsertResult::Split(left, sep, right))
                    } else {
                        Ok(InsertResult::Single(
                            this.store(&Node::Internal { seps, children }).await?,
                        ))
                    }
                }
            }
        })
    }

    /// Removes a key (no-op if absent). Nodes may underflow by design.
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub async fn delete(&self, key: &[u8]) -> Result<bool, TreeError> {
        let Some(root) = *self.root.lock() else {
            return Ok(false);
        };
        let (new_root, removed) = self.delete_rec(root, key).await?;
        if removed {
            self.commit(new_root).await?;
        }
        Ok(removed)
    }

    fn delete_rec<'a>(
        &'a self,
        at: u64,
        key: &'a [u8],
    ) -> BoxFuture<Result<(u64, bool), TreeError>>
    where
        L: 'static,
    {
        let this = self.clone();
        let key = key.to_vec();
        Box::pin(async move {
            match this.load(at).await? {
                Node::Leaf { mut keys, mut vals } => {
                    match keys.binary_search_by(|k| k.as_slice().cmp(&key[..])) {
                        Ok(i) => {
                            keys.remove(i);
                            vals.remove(i);
                            let off = this.store(&Node::Leaf { keys, vals }).await?;
                            Ok((off, true))
                        }
                        Err(_) => Ok((at, false)),
                    }
                }
                Node::Internal { seps, mut children } => {
                    let idx = seps.iter().take_while(|s| key >= **s).count();
                    let (child, removed) = this.delete_rec(children[idx], &key).await?;
                    if !removed {
                        return Ok((at, false));
                    }
                    children[idx] = child;
                    let off = this.store(&Node::Internal { seps, children }).await?;
                    Ok((off, true))
                }
            }
        })
    }

    /// Every key/value pair in key order.
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub async fn scan(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>, TreeError> {
        let Some(root) = *self.root.lock() else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let mut stack = vec![root];
        // Depth-first, children pushed in reverse for in-order output.
        while let Some(at) = stack.pop() {
            match self.load(at).await? {
                Node::Leaf { keys, vals } => {
                    out.extend(keys.into_iter().zip(vals));
                }
                Node::Internal { children, .. } => {
                    for c in children.into_iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Rewrites the live tree into `fresh_log`, dropping dead nodes.
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub async fn compact<M: AppendLog + 'static>(&self, fresh_log: M) -> Result<Tree<M>, TreeError> {
        let pairs = self.scan().await?;
        let fresh = Tree::new(fresh_log);
        for (k, v) in pairs {
            fresh.set(&k, &v).await?;
        }
        Ok(fresh)
    }

    /// Counters.
    pub fn stats(&self) -> TreeStats {
        *self.stats.lock()
    }

    /// Exposes the log for fault injection in tests.
    pub fn log(&self) -> &L {
        &self.log
    }
}

enum InsertResult {
    Single(u64),
    Split(u64, Vec<u8>, u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDisk;
    use mirage_hypervisor::Hypervisor;
    use mirage_runtime::{Runtime, UnikernelGuest};
    use mirage_testkit::prop::{any, collection};

    fn run_case<F, Fut>(f: F)
    where
        F: FnOnce(Runtime) -> Fut + Send + 'static,
        Fut: std::future::Future<Output = i64> + Send + 'static,
    {
        let guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move { f(rt2).await })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("btree", 64, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn set_get_delete_basics() {
        run_case(|_rt| async move {
            let tree = Tree::new(MemLog::new());
            assert_eq!(tree.get(b"a").await.unwrap(), None);
            tree.set(b"a", b"1").await.unwrap();
            tree.set(b"b", b"2").await.unwrap();
            tree.set(b"a", b"updated").await.unwrap();
            assert_eq!(tree.get(b"a").await.unwrap().as_deref(), Some(&b"updated"[..]));
            assert_eq!(tree.get(b"b").await.unwrap().as_deref(), Some(&b"2"[..]));
            assert!(tree.delete(b"a").await.unwrap());
            assert!(!tree.delete(b"a").await.unwrap());
            assert_eq!(tree.get(b"a").await.unwrap(), None);
            0
        });
    }

    #[test]
    fn many_keys_force_splits_and_stay_sorted() {
        run_case(|_rt| async move {
            let tree = Tree::new(MemLog::new());
            for i in (0..500u32).rev() {
                tree.set(format!("key{i:05}").as_bytes(), &i.to_le_bytes())
                    .await
                    .unwrap();
            }
            for i in 0..500u32 {
                assert_eq!(
                    tree.get(format!("key{i:05}").as_bytes()).await.unwrap(),
                    Some(i.to_le_bytes().to_vec())
                );
            }
            let scan = tree.scan().await.unwrap();
            assert_eq!(scan.len(), 500);
            assert!(scan.windows(2).all(|w| w[0].0 < w[1].0), "in key order");
            0
        });
    }

    #[test]
    fn recovery_finds_last_commit() {
        run_case(|_rt| async move {
            let log = MemLog::new();
            {
                let tree = Tree::new(log.clone());
                tree.set(b"persist", b"yes").await.unwrap();
                tree.set(b"more", b"data").await.unwrap();
            }
            let tree = Tree::recover(log).await.unwrap();
            assert_eq!(tree.get(b"persist").await.unwrap().as_deref(), Some(&b"yes"[..]));
            assert_eq!(tree.get(b"more").await.unwrap().as_deref(), Some(&b"data"[..]));
            0
        });
    }

    #[test]
    fn torn_write_rolls_back_to_previous_commit() {
        run_case(|_rt| async move {
            let log = MemLog::new();
            let len_after_first;
            {
                let tree = Tree::new(log.clone());
                tree.set(b"committed", b"1").await.unwrap();
                len_after_first = log.tail();
                tree.set(b"torn", b"2").await.unwrap();
            }
            // Tear the second mutation in half.
            log.truncate(len_after_first + 7);
            let tree = Tree::recover(log).await.unwrap();
            assert_eq!(
                tree.get(b"committed").await.unwrap().as_deref(),
                Some(&b"1"[..]),
                "first commit survives"
            );
            assert_eq!(tree.get(b"torn").await.unwrap(), None, "torn write discarded");
            // And the tree is still writable.
            tree.set(b"after", b"3").await.unwrap();
            assert_eq!(tree.get(b"after").await.unwrap().as_deref(), Some(&b"3"[..]));
            0
        });
    }

    #[test]
    fn empty_log_recovers_to_empty_tree() {
        run_case(|_rt| async move {
            let tree = Tree::recover(MemLog::new()).await.unwrap();
            assert_eq!(tree.get(b"x").await.unwrap(), None);
            0
        });
    }

    #[test]
    fn compaction_shrinks_the_log() {
        run_case(|_rt| async move {
            let tree = Tree::new(MemLog::new());
            for i in 0..100u32 {
                tree.set(b"hot", &i.to_le_bytes()).await.unwrap();
            }
            let before = tree.log().tail();
            let compacted = tree.compact(MemLog::new()).await.unwrap();
            assert!(compacted.log().tail() < before / 10, "dead versions dropped");
            assert_eq!(
                compacted.get(b"hot").await.unwrap(),
                Some(99u32.to_le_bytes().to_vec())
            );
            0
        });
    }

    #[test]
    fn works_over_a_block_log() {
        run_case(|_rt| async move {
            let tree = Tree::new(BlockLog::new(MemDisk::new(4096), 0));
            for i in 0..64u32 {
                tree.set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                    .await
                    .unwrap();
            }
            assert_eq!(tree.get(b"k42").await.unwrap(), Some(b"v42".to_vec()));
            0
        });
    }

    mirage_testkit::property! {
        #![cases(16)]
        /// The tree agrees with a BTreeMap model under random workloads.
        fn prop_model_check(ops in collection::vec(
            (0u8..3, 0u16..64, collection::vec(any::<u8>(), 0..8)),
            1..120,
        )) {
            run_case(move |_rt| async move {
                let tree = Tree::new(MemLog::new());
                let mut model = std::collections::BTreeMap::new();
                for (op, keyid, val) in ops {
                    let key = format!("key{keyid}").into_bytes();
                    match op {
                        0 => {
                            tree.set(&key, &val).await.unwrap();
                            model.insert(key, val);
                        }
                        1 => {
                            assert_eq!(tree.get(&key).await.unwrap(), model.get(&key).cloned());
                        }
                        _ => {
                            assert_eq!(tree.delete(&key).await.unwrap(), model.remove(&key).is_some());
                        }
                    }
                }
                let scan = tree.scan().await.unwrap();
                let expect: Vec<(Vec<u8>, Vec<u8>)> =
                    model.into_iter().collect();
                assert_eq!(scan, expect);
                0
            });
        }
    }
}
