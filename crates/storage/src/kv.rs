//! The simple key-value store and memcache-style interface (paper
//! Table 1: "Simple key-value … Memcache").

use std::collections::HashMap;
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

/// Store counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Successful gets.
    pub hits: u64,
    /// Gets for missing keys.
    pub misses: u64,
    /// Sets (inserts + overwrites).
    pub sets: u64,
    /// Deletes that removed something.
    pub deletes: u64,
}

struct KvInner {
    map: HashMap<Vec<u8>, (Vec<u8>, u64)>, // value, version
    stats: KvStats,
    version: u64,
}

/// An in-memory key-value store with compare-and-swap — the smallest
/// Table 1 storage backend (used directly by the dev-mode appliances and
/// as the memcache protocol's state).
#[derive(Clone)]
pub struct KvStore {
    inner: Arc<Mutex<KvInner>>,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KvStore({} keys)", self.inner.lock().map.len())
    }
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

impl KvStore {
    /// An empty store.
    pub fn new() -> KvStore {
        KvStore {
            inner: Arc::new(Mutex::new(KvInner {
                map: HashMap::new(),
                stats: KvStats::default(),
                version: 0,
            })),
        }
    }

    /// Reads a key; returns the value and its version (for CAS).
    pub fn get(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Writes a key, returning the new version.
    pub fn set(&self, key: &[u8], value: Vec<u8>) -> u64 {
        let mut inner = self.inner.lock();
        inner.version += 1;
        let v = inner.version;
        inner.map.insert(key.to_vec(), (value, v));
        inner.stats.sets += 1;
        v
    }

    /// Compare-and-swap: writes only if the current version matches.
    ///
    /// Returns the new version on success.
    pub fn cas(&self, key: &[u8], expected_version: u64, value: Vec<u8>) -> Option<u64> {
        let mut inner = self.inner.lock();
        let current = inner.map.get(key).map(|(_, v)| *v)?;
        if current != expected_version {
            return None;
        }
        inner.version += 1;
        let v = inner.version;
        inner.map.insert(key.to_vec(), (value, v));
        inner.stats.sets += 1;
        Some(v)
    }

    /// Removes a key; `true` if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let mut inner = self.inner.lock();
        let removed = inner.map.remove(key).is_some();
        if removed {
            inner.stats.deletes += 1;
        }
        removed
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters.
    pub fn stats(&self) -> KvStats {
        self.inner.lock().stats
    }

    /// All keys, sorted (iteration for dumps/tests).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self.inner.lock().map.keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::{any, collection};

    #[test]
    fn get_set_delete() {
        let kv = KvStore::new();
        assert!(kv.get(b"a").is_none());
        kv.set(b"a", b"1".to_vec());
        assert_eq!(kv.get(b"a").unwrap().0, b"1");
        assert!(kv.delete(b"a"));
        assert!(!kv.delete(b"a"));
        let st = kv.stats();
        assert_eq!((st.hits, st.misses, st.sets, st.deletes), (1, 1, 1, 1));
    }

    #[test]
    fn cas_enforces_versions() {
        let kv = KvStore::new();
        let v1 = kv.set(b"counter", b"0".to_vec());
        let v2 = kv.cas(b"counter", v1, b"1".to_vec()).expect("fresh version");
        assert!(kv.cas(b"counter", v1, b"2".to_vec()).is_none(), "stale");
        assert!(kv.cas(b"counter", v2, b"2".to_vec()).is_some());
        assert_eq!(kv.get(b"counter").unwrap().0, b"2");
    }

    #[test]
    fn clones_share_state() {
        let kv = KvStore::new();
        let kv2 = kv.clone();
        kv.set(b"x", b"y".to_vec());
        assert_eq!(kv2.get(b"x").unwrap().0, b"y");
    }

    mirage_testkit::property! {
        /// The store agrees with a HashMap model under arbitrary ops.
        fn prop_matches_model(ops in collection::vec(
            (0u8..3, collection::vec(any::<u8>(), 1..4), collection::vec(any::<u8>(), 0..4)),
            0..200,
        )) {
            let kv = KvStore::new();
            let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> = Default::default();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        kv.set(&key, val.clone());
                        model.insert(key, val);
                    }
                    1 => {
                        assert_eq!(kv.get(&key).map(|(v, _)| v), model.get(&key).cloned());
                    }
                    _ => {
                        assert_eq!(kv.delete(&key), model.remove(&key).is_some());
                    }
                }
            }
            assert_eq!(kv.len(), model.len());
        }
    }
}
