//! The asynchronous block layer.
//!
//! "Mirage block devices share the same Ring abstraction as network
//! devices … This gives control to the application over caching policy
//! rather than providing only one default cache policy" (paper §3.5.2).
//! [`BlockIo`] is the policy-free interface — every operation goes to the
//! device, writes are always direct — and the caching decisions live in
//! separate wrappers ([`crate::cache`]).

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_devices::blk::{BlkCompletion, BlkHandle, BlkOp, BlkRequest, SECTOR_SIZE};
use mirage_runtime::channel::{self, Sender};
use mirage_runtime::Runtime;

/// Boxed future used by the object-safe [`BlockIo`] trait.
pub type BoxFuture<T> = Pin<Box<dyn Future<Output = T> + Send>>;

/// Errors from block operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The request ran past the end of the device.
    OutOfRange,
    /// The backend rejected or failed the request.
    Io,
    /// Writes must be whole sectors.
    Unaligned,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            BlockError::OutOfRange => "request past end of device",
            BlockError::Io => "backend i/o failure",
            BlockError::Unaligned => "data is not sector-aligned",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for BlockError {}

/// A sector-addressed block device. All writes are direct (persisted when
/// the future resolves) — the paper's "only built-in policy".
pub trait BlockIo: Send + Sync {
    /// Device size in sectors.
    fn sector_count(&self) -> u64;

    /// Reads `count` sectors starting at `sector`.
    fn read(&self, sector: u64, count: u32) -> BoxFuture<Result<Vec<u8>, BlockError>>;

    /// Writes whole sectors starting at `sector`.
    fn write(&self, sector: u64, data: Vec<u8>) -> BoxFuture<Result<(), BlockError>>;
}

// ---------------------------------------------------------------------------

/// An in-memory block device for unit tests and RAM-disk appliances.
#[derive(Clone)]
pub struct MemDisk {
    sectors: u64,
    data: Arc<Mutex<HashMap<u64, Box<[u8; SECTOR_SIZE]>>>>,
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemDisk({} sectors)", self.sectors)
    }
}

impl MemDisk {
    /// A zeroed RAM disk of `sectors` sectors.
    pub fn new(sectors: u64) -> MemDisk {
        MemDisk {
            sectors,
            data: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Overwrites a byte range without sector alignment (test fixture
    /// shortcut and fault injection).
    pub fn patch(&self, offset: u64, bytes: &[u8]) {
        let mut data = self.data.lock();
        for (i, b) in bytes.iter().enumerate() {
            let pos = offset + i as u64;
            let sector = pos / SECTOR_SIZE as u64;
            let within = (pos % SECTOR_SIZE as u64) as usize;
            let block = data
                .entry(sector)
                .or_insert_with(|| Box::new([0u8; SECTOR_SIZE]));
            block[within] = *b;
        }
    }
}

impl BlockIo for MemDisk {
    fn sector_count(&self) -> u64 {
        self.sectors
    }

    fn read(&self, sector: u64, count: u32) -> BoxFuture<Result<Vec<u8>, BlockError>> {
        let this = self.clone();
        Box::pin(async move {
            if sector + count as u64 > this.sectors {
                return Err(BlockError::OutOfRange);
            }
            let data = this.data.lock();
            let mut out = vec![0u8; count as usize * SECTOR_SIZE];
            for i in 0..count as u64 {
                if let Some(block) = data.get(&(sector + i)) {
                    let off = i as usize * SECTOR_SIZE;
                    out[off..off + SECTOR_SIZE].copy_from_slice(&block[..]);
                }
            }
            Ok(out)
        })
    }

    fn write(&self, sector: u64, data: Vec<u8>) -> BoxFuture<Result<(), BlockError>> {
        let this = self.clone();
        Box::pin(async move {
            if !data.len().is_multiple_of(SECTOR_SIZE) {
                return Err(BlockError::Unaligned);
            }
            let count = (data.len() / SECTOR_SIZE) as u64;
            if sector + count > this.sectors {
                return Err(BlockError::OutOfRange);
            }
            let mut map = this.data.lock();
            for i in 0..count {
                let off = i as usize * SECTOR_SIZE;
                let mut block = Box::new([0u8; SECTOR_SIZE]);
                block.copy_from_slice(&data[off..off + SECTOR_SIZE]);
                map.insert(sector + i, block);
            }
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------------

struct BlkShared {
    waiters: Mutex<HashMap<u64, Sender<BlkCompletion>>>,
    next_id: Mutex<u64>,
    submit: Sender<BlkRequest>,
}

/// [`BlockIo`] over a blkfront ring ([`BlkHandle`]): the Xen-backed device.
///
/// Requests larger than one page are split into page-sized ring requests
/// and completed together, exactly as blkfront segments large I/O.
#[derive(Clone)]
pub struct BlkDevice {
    sectors: u64,
    shared: Arc<BlkShared>,
}

impl std::fmt::Debug for BlkDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlkDevice({} sectors)", self.sectors)
    }
}

impl BlkDevice {
    /// Wraps a blkfront handle, spawning the completion-demux thread.
    pub fn new(rt: &Runtime, handle: BlkHandle) -> BlkDevice {
        let sectors = handle.sectors;
        let shared = Arc::new(BlkShared {
            waiters: Mutex::new(HashMap::new()),
            next_id: Mutex::new(1),
            submit: handle.submit,
        });
        let shared2 = Arc::clone(&shared);
        let mut completions = handle.complete;
        rt.spawn(async move {
            while let Ok(done) = completions.recv().await {
                let waiter = shared2.waiters.lock().remove(&done.id);
                if let Some(tx) = waiter {
                    let _ = tx.send(done);
                }
            }
        });
        BlkDevice { sectors, shared }
    }

    /// Fires a request without waiting; returns the receiver to await —
    /// chunked reads/writes pipeline through the ring (the device services
    /// them back-to-back instead of one latency per chunk).
    fn fire_request(
        shared: &Arc<BlkShared>,
        op: BlkOp,
        sector: u64,
        count: u16,
        data: Option<Vec<u8>>,
    ) -> Result<mirage_runtime::channel::Receiver<BlkCompletion>, BlockError> {
        let id = {
            let mut next = shared.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let (tx, rx) = channel::channel();
        shared.waiters.lock().insert(id, tx);
        shared
            .submit
            .send(BlkRequest {
                id,
                op,
                sector,
                count,
                data,
            })
            .map_err(|_| BlockError::Io)?;
        Ok(rx)
    }
}

/// Sectors per ring request (one 4 KiB page).
const SECTORS_PER_REQ: u32 = 8;

impl BlockIo for BlkDevice {
    fn sector_count(&self) -> u64 {
        self.sectors
    }

    fn read(&self, sector: u64, count: u32) -> BoxFuture<Result<Vec<u8>, BlockError>> {
        let shared = Arc::clone(&self.shared);
        let sectors = self.sectors;
        Box::pin(async move {
            if sector + count as u64 > sectors {
                return Err(BlockError::OutOfRange);
            }
            // Issue every chunk up front (pipelined through the ring),
            // then collect completions in order.
            let mut pending = Vec::new();
            let mut at = sector;
            let mut remaining = count;
            while remaining > 0 {
                let n = remaining.min(SECTORS_PER_REQ) as u16;
                pending.push(Self::fire_request(&shared, BlkOp::Read, at, n, None)?);
                at += n as u64;
                remaining -= n as u32;
            }
            let mut out = Vec::with_capacity(count as usize * SECTOR_SIZE);
            for mut rx in pending {
                let done = rx.recv().await.map_err(|_| BlockError::Io)?;
                if !done.ok {
                    return Err(BlockError::Io);
                }
                out.extend(done.data.ok_or(BlockError::Io)?);
            }
            Ok(out)
        })
    }

    fn write(&self, sector: u64, data: Vec<u8>) -> BoxFuture<Result<(), BlockError>> {
        let shared = Arc::clone(&self.shared);
        let sectors = self.sectors;
        Box::pin(async move {
            if !data.len().is_multiple_of(SECTOR_SIZE) {
                return Err(BlockError::Unaligned);
            }
            let count = (data.len() / SECTOR_SIZE) as u64;
            if sector + count > sectors {
                return Err(BlockError::OutOfRange);
            }
            let mut at = sector;
            let mut off = 0usize;
            let mut pending = Vec::new();
            while off < data.len() {
                let n = ((data.len() - off) / SECTOR_SIZE).min(SECTORS_PER_REQ as usize) as u16;
                let chunk = data[off..off + n as usize * SECTOR_SIZE].to_vec();
                pending.push(Self::fire_request(&shared, BlkOp::Write, at, n, Some(chunk))?);
                at += n as u64;
                off += n as usize * SECTOR_SIZE;
            }
            for mut rx in pending {
                let done = rx.recv().await.map_err(|_| BlockError::Io)?;
                if !done.ok {
                    return Err(BlockError::Io);
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_hypervisor::Hypervisor;
    use mirage_runtime::UnikernelGuest;

    fn run_async_test<F, Fut>(f: F)
    where
        F: FnOnce(Runtime) -> Fut + Send + 'static,
        Fut: Future<Output = i64> + Send + 'static,
    {
        let guest = UnikernelGuest::new(move |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move { f(rt2.clone()).await })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("t", 64, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn memdisk_read_write_round_trip() {
        run_async_test(|_rt| async move {
            let disk = MemDisk::new(128);
            let data = vec![7u8; 3 * SECTOR_SIZE];
            disk.write(10, data.clone()).await.unwrap();
            assert_eq!(disk.read(10, 3).await.unwrap(), data);
            assert_eq!(
                disk.read(0, 1).await.unwrap(),
                vec![0u8; SECTOR_SIZE],
                "untouched sectors read zero"
            );
            0
        });
    }

    #[test]
    fn memdisk_bounds_and_alignment() {
        run_async_test(|_rt| async move {
            let disk = MemDisk::new(8);
            assert_eq!(disk.read(7, 2).await, Err(BlockError::OutOfRange));
            assert_eq!(
                disk.write(0, vec![1u8; 100]).await,
                Err(BlockError::Unaligned)
            );
            0
        });
    }

    #[test]
    fn patch_edits_arbitrary_ranges() {
        run_async_test(|_rt| async move {
            let disk = MemDisk::new(8);
            disk.patch(SECTOR_SIZE as u64 - 2, b"abcd");
            let s0 = disk.read(0, 1).await.unwrap();
            let s1 = disk.read(1, 1).await.unwrap();
            assert_eq!(&s0[SECTOR_SIZE - 2..], b"ab");
            assert_eq!(&s1[..2], b"cd");
            0
        });
    }
}
