//! The cooperative task executor — Mirage's Lwt analogue (paper §3.3).
//!
//! "Written in pure OCaml, Lwt threads are heap-allocated values, with only
//! the thread main loop requiring a C binding to poll for external events."
//! Here, lightweight threads are plain Rust `Future`s polled by a
//! single-threaded executor; "the VM is thus either executing OCaml code or
//! blocked, with no internal preemption or asynchronous interrupts."
//!
//! Every poll charges [`CostTable::thread_switch`] to virtual time, and
//! thread construction can optionally be charged against a
//! [`GcHeap`](mirage_pvboot::heap::GcHeap) model — this is how the Figure 7
//! thread benchmarks account for garbage-collector pressure.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use mirage_testkit::sync::Mutex;

use mirage_hypervisor::{Dur, Time};
use mirage_pvboot::heap::GcHeap;

pub(crate) type TaskId = u64;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct TimerEntry {
    at: Time,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TaskEntry {
    fut: Option<BoxFuture>,
    queued: bool,
}

pub(crate) struct Core {
    pub(crate) now: Time,
    /// Virtual time charged by tasks since the driver last drained it.
    pub(crate) charge: Dur,
    run_queue: VecDeque<TaskId>,
    tasks: HashMap<TaskId, TaskEntry>,
    timers: BinaryHeap<TimerEntry>,
    next_task: TaskId,
    next_timer_seq: u64,
    pub(crate) spawned_total: u64,
    pub(crate) heap: Option<GcHeap>,
}

impl Core {
    fn new() -> Core {
        Core {
            now: Time::ZERO,
            charge: Dur::ZERO,
            run_queue: VecDeque::new(),
            tasks: HashMap::new(),
            timers: BinaryHeap::new(),
            next_task: 0,
            next_timer_seq: 0,
            spawned_total: 0,
            heap: None,
        }
    }
}

/// Shared handle to the executor core.
#[derive(Clone)]
pub(crate) struct CoreHandle(pub(crate) Arc<Mutex<Core>>);

struct TaskWaker {
    id: TaskId,
    core: std::sync::Weak<Mutex<Core>>,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        if let Some(core) = self.core.upgrade() {
            let mut core = core.lock();
            if let Some(entry) = core.tasks.get_mut(&self.id) {
                if !entry.queued {
                    entry.queued = true;
                    core.run_queue.push_back(self.id);
                }
            }
        }
    }
}

/// Report from one executor drain (the state `domainpoll` needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Earliest pending timer, if any.
    pub next_deadline: Option<Time>,
    /// Tasks still alive (runnable or blocked).
    pub live_tasks: usize,
    /// Futures polled during this drain.
    pub polls: u64,
}

impl CoreHandle {
    pub(crate) fn new() -> CoreHandle {
        CoreHandle(Arc::new(Mutex::new(Core::new())))
    }

    pub(crate) fn spawn(&self, fut: BoxFuture) -> TaskId {
        let mut core = self.0.lock();
        let id = core.next_task;
        core.next_task += 1;
        core.spawned_total += 1;
        core.tasks.insert(
            id,
            TaskEntry {
                fut: Some(fut),
                queued: true,
            },
        );
        core.run_queue.push_back(id);
        id
    }

    pub(crate) fn register_timer(&self, at: Time, waker: Waker) {
        let mut core = self.0.lock();
        let seq = core.next_timer_seq;
        core.next_timer_seq += 1;
        core.timers.push(TimerEntry { at, seq, waker });
    }

    pub(crate) fn now(&self) -> Time {
        self.0.lock().now
    }

    pub(crate) fn charge(&self, d: Dur) {
        self.0.lock().charge += d;
    }

    /// Charges a heap allocation against the GC model, if one is attached.
    pub(crate) fn heap_alloc(&self, bytes: u64, long_lived: bool, costs: &mirage_hypervisor::CostTable) {
        let mut core = self.0.lock();
        if let Some(heap) = core.heap.as_mut() {
            let cost = heap.alloc(bytes, long_lived, costs);
            core.charge += cost;
        }
    }

    fn fire_expired_timers(&self, now: Time) -> bool {
        let mut fired = Vec::new();
        {
            let mut core = self.0.lock();
            while core
                .timers
                .peek()
                .map(|t| t.at <= now)
                .unwrap_or(false)
            {
                fired.push(core.timers.pop().expect("peeked"));
            }
        }
        let any = !fired.is_empty();
        for t in fired {
            t.waker.wake();
        }
        any
    }

    /// Polls runnable tasks until none remain and no timer has expired.
    ///
    /// `now_fn` reports virtual time as a function of the charge accumulated
    /// so far, so CPU-bound work delays timer firing exactly as it would on
    /// a single vCPU.
    pub(crate) fn run_until_stalled(
        &self,
        start: Time,
        thread_switch: Dur,
        mut drain_charge: impl FnMut(Dur) -> Time,
    ) -> StallReport {
        let mut polls = 0u64;
        loop {
            // Advance the executor's notion of time, then fire timers.
            let pending_charge = {
                let mut core = self.0.lock();
                std::mem::replace(&mut core.charge, Dur::ZERO)
            };
            let now = drain_charge(pending_charge);
            {
                self.0.lock().now = now;
            }
            let fired = self.fire_expired_timers(now);

            let next = {
                let mut core = self.0.lock();
                core.run_queue.pop_front()
            };
            let Some(id) = next else {
                if fired {
                    continue;
                }
                break;
            };

            // Take the future out so polling happens without the core lock.
            let fut = {
                let mut core = self.0.lock();
                match core.tasks.get_mut(&id) {
                    Some(entry) => {
                        entry.queued = false;
                        entry.fut.take()
                    }
                    None => None,
                }
            };
            let Some(mut fut) = fut else { continue };

            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                core: Arc::downgrade(&self.0),
            }));
            let mut cx = Context::from_waker(&waker);
            polls += 1;
            self.charge(thread_switch);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    let mut core = self.0.lock();
                    core.tasks.remove(&id);
                }
                Poll::Pending => {
                    let mut core = self.0.lock();
                    if let Some(entry) = core.tasks.get_mut(&id) {
                        entry.fut = Some(fut);
                    }
                }
            }
        }
        let _ = start;
        let core = self.0.lock();
        StallReport {
            next_deadline: core.timers.peek().map(|t| t.at),
            live_tasks: core.tasks.len(),
            polls,
        }
    }

    pub(crate) fn live_tasks(&self) -> usize {
        self.0.lock().tasks.len()
    }
}
