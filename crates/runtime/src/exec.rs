//! The cooperative task executor — Mirage's Lwt analogue (paper §3.3).
//!
//! "Written in pure OCaml, Lwt threads are heap-allocated values, with only
//! the thread main loop requiring a C binding to poll for external events."
//! Here, lightweight threads are plain Rust `Future`s polled by a
//! single-threaded executor; "the VM is thus either executing OCaml code or
//! blocked, with no internal preemption or asynchronous interrupts."
//!
//! Every poll charges [`CostTable::thread_switch`] to virtual time, and
//! thread construction can optionally be charged against a
//! [`GcHeap`](mirage_pvboot::heap::GcHeap) model — this is how the Figure 7
//! thread benchmarks account for garbage-collector pressure.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use mirage_testkit::sync::Mutex;
use mirage_testkit::wheel::{TimerId, TimerWheel};

use mirage_hypervisor::{Dur, Time};
use mirage_pvboot::heap::GcHeap;

pub(crate) type TaskId = u64;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct TaskEntry {
    fut: Option<BoxFuture>,
    queued: bool,
}

pub(crate) struct Core {
    pub(crate) now: Time,
    /// Virtual time charged by tasks since the driver last drained it.
    pub(crate) charge: Dur,
    run_queue: VecDeque<TaskId>,
    tasks: HashMap<TaskId, TaskEntry>,
    /// Pending sleeps, keyed by absolute deadline. The hashed wheel keeps
    /// insert/cancel O(1) so a domain holding a million armed timeouts
    /// pays only for the ones that actually expire (fires in the same
    /// `(deadline, registration)` order the old binary heap popped).
    timers: TimerWheel<Waker>,
    next_task: TaskId,
    pub(crate) spawned_total: u64,
    pub(crate) heap: Option<GcHeap>,
}

impl Core {
    fn new() -> Core {
        Core {
            now: Time::ZERO,
            charge: Dur::ZERO,
            run_queue: VecDeque::new(),
            tasks: HashMap::new(),
            timers: TimerWheel::new(),
            next_task: 0,
            spawned_total: 0,
            heap: None,
        }
    }
}

/// Shared handle to the executor core.
#[derive(Clone)]
pub(crate) struct CoreHandle(pub(crate) Arc<Mutex<Core>>);

struct TaskWaker {
    id: TaskId,
    core: std::sync::Weak<Mutex<Core>>,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        if let Some(core) = self.core.upgrade() {
            let mut core = core.lock();
            if let Some(entry) = core.tasks.get_mut(&self.id) {
                if !entry.queued {
                    entry.queued = true;
                    core.run_queue.push_back(self.id);
                }
            }
        }
    }
}

/// Report from one executor drain (the state `domainpoll` needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Earliest pending timer, if any.
    pub next_deadline: Option<Time>,
    /// Tasks still alive (runnable or blocked).
    pub live_tasks: usize,
    /// Futures polled during this drain.
    pub polls: u64,
}

impl CoreHandle {
    pub(crate) fn new() -> CoreHandle {
        CoreHandle(Arc::new(Mutex::new(Core::new())))
    }

    pub(crate) fn spawn(&self, fut: BoxFuture) -> TaskId {
        let mut core = self.0.lock();
        let id = core.next_task;
        core.next_task += 1;
        core.spawned_total += 1;
        core.tasks.insert(
            id,
            TaskEntry {
                fut: Some(fut),
                queued: true,
            },
        );
        core.run_queue.push_back(id);
        id
    }

    /// Arms a timer; the returned id lets the sleep future refresh its
    /// waker on re-poll and disarm itself on drop.
    pub(crate) fn register_timer(&self, at: Time, waker: Waker) -> TimerId {
        self.0.lock().timers.insert(at.as_nanos(), waker)
    }

    /// Refreshes the waker of a pending timer. Returns `false` if the
    /// timer already fired (the caller should re-register).
    pub(crate) fn update_timer(&self, id: TimerId, waker: &Waker) -> bool {
        let mut core = self.0.lock();
        match core.timers.get_mut(id) {
            Some(slot) => {
                if !slot.will_wake(waker) {
                    *slot = waker.clone();
                }
                true
            }
            None => false,
        }
    }

    /// Disarms a timer whose sleep future was dropped or completed.
    pub(crate) fn cancel_timer(&self, id: TimerId) {
        self.0.lock().timers.cancel(id);
    }

    pub(crate) fn now(&self) -> Time {
        self.0.lock().now
    }

    pub(crate) fn charge(&self, d: Dur) {
        self.0.lock().charge += d;
    }

    /// Charges a heap allocation against the GC model, if one is attached.
    pub(crate) fn heap_alloc(&self, bytes: u64, long_lived: bool, costs: &mirage_hypervisor::CostTable) {
        let mut core = self.0.lock();
        if let Some(heap) = core.heap.as_mut() {
            let cost = heap.alloc(bytes, long_lived, costs);
            core.charge += cost;
        }
    }

    fn fire_expired_timers(&self, now: Time) -> bool {
        let mut fired = Vec::new();
        {
            let mut core = self.0.lock();
            core.timers.advance(now.as_nanos(), |_, waker| fired.push(waker));
        }
        // Wake outside the lock: TaskWaker::wake re-locks the core.
        let any = !fired.is_empty();
        for waker in fired {
            waker.wake();
        }
        any
    }

    /// Polls runnable tasks until none remain and no timer has expired.
    ///
    /// `now_fn` reports virtual time as a function of the charge accumulated
    /// so far, so CPU-bound work delays timer firing exactly as it would on
    /// a single vCPU.
    pub(crate) fn run_until_stalled(
        &self,
        start: Time,
        thread_switch: Dur,
        mut drain_charge: impl FnMut(Dur) -> Time,
    ) -> StallReport {
        let mut polls = 0u64;
        loop {
            // Advance the executor's notion of time, then fire timers.
            let pending_charge = {
                let mut core = self.0.lock();
                std::mem::replace(&mut core.charge, Dur::ZERO)
            };
            let now = drain_charge(pending_charge);
            {
                self.0.lock().now = now;
            }
            let fired = self.fire_expired_timers(now);

            let next = {
                let mut core = self.0.lock();
                core.run_queue.pop_front()
            };
            let Some(id) = next else {
                if fired {
                    continue;
                }
                break;
            };

            // Take the future out so polling happens without the core lock.
            let fut = {
                let mut core = self.0.lock();
                match core.tasks.get_mut(&id) {
                    Some(entry) => {
                        entry.queued = false;
                        entry.fut.take()
                    }
                    None => None,
                }
            };
            let Some(mut fut) = fut else { continue };

            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                core: Arc::downgrade(&self.0),
            }));
            let mut cx = Context::from_waker(&waker);
            polls += 1;
            self.charge(thread_switch);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    let mut core = self.0.lock();
                    core.tasks.remove(&id);
                }
                Poll::Pending => {
                    let mut core = self.0.lock();
                    if let Some(entry) = core.tasks.get_mut(&id) {
                        entry.fut = Some(fut);
                    }
                }
            }
        }
        let _ = start;
        let mut core = self.0.lock();
        StallReport {
            next_deadline: core.timers.next_deadline().map(Time::from_nanos),
            live_tasks: core.tasks.len(),
            polls,
        }
    }

    pub(crate) fn live_tasks(&self) -> usize {
        self.0.lock().tasks.len()
    }
}
