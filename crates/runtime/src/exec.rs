//! The cooperative task executor — Mirage's Lwt analogue (paper §3.3),
//! scaled out to per-vCPU cores.
//!
//! "Written in pure OCaml, Lwt threads are heap-allocated values, with only
//! the thread main loop requiring a C binding to poll for external events."
//! Here, lightweight threads are plain Rust `Future`s polled by a
//! cooperative executor; "the VM is thus either executing OCaml code or
//! blocked, with no internal preemption or asynchronous interrupts."
//!
//! An SMP runtime holds one [`CoreState`] per vCPU — its own run queue,
//! timer wheel and virtual clock — under a single scheduler lock (the
//! simulation itself stays on one OS thread; parallelism is expressed in
//! *virtual* time through the hypervisor's per-vCPU charge lanes). Tasks
//! have a home core: charges, sleeps and child spawns from inside a task
//! route to the core that is polling it. Non-pinned tasks migrate between
//! cores through deterministic seeded work stealing, so an idle core picks
//! up backlog while `MIRAGE_TEST_SEED` still reproduces the exact
//! interleaving byte-for-byte.
//!
//! Every poll charges [`CostTable::thread_switch`] to the polling core's
//! virtual time, and thread construction can optionally be charged against
//! a [`GcHeap`](mirage_pvboot::heap::GcHeap) model — this is how the
//! Figure 7 thread benchmarks account for garbage-collector pressure.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use mirage_testkit::rng::Rng;
use mirage_testkit::sync::Mutex;
use mirage_testkit::wheel::{TimerId, TimerWheel};

use mirage_hypervisor::{Dur, Time};
use mirage_pvboot::heap::GcHeap;

pub(crate) type TaskId = u64;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct TaskEntry {
    fut: Option<BoxFuture>,
    queued: bool,
    /// Core whose run queue wakes of this task land on. Stealing moves it.
    home: usize,
    /// Pinned tasks (shard owners, per-core service loops) never migrate.
    pinned: bool,
}

/// One vCPU's executor state: run queue, clock, pending charge, timers.
struct CoreState {
    now: Time,
    /// Virtual time charged by tasks since the driver last drained it.
    charge: Dur,
    run_queue: VecDeque<TaskId>,
    /// Pending sleeps, keyed by absolute deadline. The hashed wheel keeps
    /// insert/cancel O(1) so a domain holding a million armed timeouts
    /// pays only for the ones that actually expire (fires in the same
    /// `(deadline, registration)` order the old binary heap popped).
    timers: TimerWheel<Waker>,
}

impl CoreState {
    fn new() -> CoreState {
        CoreState {
            now: Time::ZERO,
            charge: Dur::ZERO,
            run_queue: VecDeque::new(),
            timers: TimerWheel::new(),
        }
    }
}

pub(crate) struct Sched {
    cores: Vec<CoreState>,
    tasks: HashMap<TaskId, TaskEntry>,
    next_task: TaskId,
    pub(crate) spawned_total: u64,
    pub(crate) heap: Option<GcHeap>,
    /// Core currently polling a task — charges, `now()` reads and timer
    /// registrations from inside the task route here (the task may hold a
    /// handle homed elsewhere).
    executing: Option<usize>,
    /// Seeded schedule source: interleaving across non-empty cores and
    /// steal-victim choice both draw from it, so a multi-core run is a
    /// pure function of `MIRAGE_TEST_SEED`.
    rng: Rng,
    pub(crate) steals: u64,
}

impl Sched {
    fn new(cores: usize) -> Sched {
        assert!(cores > 0, "an executor needs at least one core");
        Sched {
            cores: (0..cores).map(|_| CoreState::new()).collect(),
            tasks: HashMap::new(),
            next_task: 0,
            spawned_total: 0,
            heap: None,
            executing: None,
            rng: Rng::for_stream(mirage_testkit::test_seed(), "smp-exec"),
            steals: 0,
        }
    }

    /// Deterministic work stealing: every idle core takes one non-pinned
    /// task from the longest eligible queue (len >= 2, seeded tie-break),
    /// migrating the task's home so subsequent wakes follow it.
    fn steal_for_idle(&mut self) {
        if self.cores.len() == 1 {
            return;
        }
        for thief in 0..self.cores.len() {
            if !self.cores[thief].run_queue.is_empty() {
                continue;
            }
            let mut candidates: Vec<usize> = Vec::new();
            let mut best_len = 0usize;
            for (v, core) in self.cores.iter().enumerate() {
                if v == thief {
                    continue;
                }
                let unpinned = core
                    .run_queue
                    .iter()
                    .filter(|id| !self.tasks[*id].pinned)
                    .count();
                if core.run_queue.len() >= 2 && unpinned > 0 {
                    match core.run_queue.len().cmp(&best_len) {
                        std::cmp::Ordering::Greater => {
                            best_len = core.run_queue.len();
                            candidates.clear();
                            candidates.push(v);
                        }
                        std::cmp::Ordering::Equal => candidates.push(v),
                        std::cmp::Ordering::Less => {}
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            let victim = if candidates.len() == 1 {
                candidates[0]
            } else {
                candidates[self.rng.gen_index(candidates.len())]
            };
            // Take the newest unpinned entry: older work stays with its
            // owner (it is about to be polled there anyway).
            let pos = self.cores[victim]
                .run_queue
                .iter()
                .rposition(|id| !self.tasks[id].pinned);
            if let Some(pos) = pos {
                let id = self.cores[victim].run_queue.remove(pos).expect("position valid");
                self.tasks.get_mut(&id).expect("stolen task exists").home = thief;
                self.cores[thief].run_queue.push_back(id);
                self.steals += 1;
            }
        }
    }
}

/// Shared handle to the scheduler, annotated with a home core: spawns and
/// charges made *outside* any task (device service code, harnesses) land
/// on the home core.
#[derive(Clone)]
pub(crate) struct CoreHandle {
    pub(crate) sched: Arc<Mutex<Sched>>,
    pub(crate) home: usize,
}

struct TaskWaker {
    id: TaskId,
    sched: std::sync::Weak<Mutex<Sched>>,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        if let Some(sched) = self.sched.upgrade() {
            let mut s = sched.lock();
            if let Some(entry) = s.tasks.get_mut(&self.id) {
                if !entry.queued {
                    entry.queued = true;
                    let home = entry.home;
                    s.cores[home].run_queue.push_back(self.id);
                }
            }
        }
    }
}

/// Report from one executor drain (the state `domainpoll` needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Earliest pending timer on any core, if any.
    pub next_deadline: Option<Time>,
    /// Tasks still alive (runnable or blocked).
    pub live_tasks: usize,
    /// Futures polled during this drain (all cores).
    pub polls: u64,
}

impl CoreHandle {
    pub(crate) fn new(cores: usize) -> CoreHandle {
        CoreHandle {
            sched: Arc::new(Mutex::new(Sched::new(cores))),
            home: 0,
        }
    }

    /// The same scheduler, homed on core `v`.
    pub(crate) fn on_core(&self, v: usize) -> CoreHandle {
        assert!(v < self.cores(), "core {v} out of range");
        CoreHandle {
            sched: Arc::clone(&self.sched),
            home: v,
        }
    }

    pub(crate) fn cores(&self) -> usize {
        self.sched.lock().cores.len()
    }

    /// The core a charge made right now would land on (the executing core
    /// inside a task, this handle's home outside one).
    pub(crate) fn current_core(&self) -> usize {
        let s = self.sched.lock();
        s.executing.unwrap_or(self.home)
    }

    /// Spawns a task. `pin: Some(v)` locks it to core `v` forever;
    /// `None` homes it on the spawning context's core but leaves it
    /// stealable.
    pub(crate) fn spawn(&self, fut: BoxFuture, pin: Option<usize>) -> TaskId {
        let mut s = self.sched.lock();
        let home = pin.unwrap_or_else(|| s.executing.unwrap_or(self.home));
        assert!(home < s.cores.len(), "core {home} out of range");
        let id = s.next_task;
        s.next_task += 1;
        s.spawned_total += 1;
        s.tasks.insert(
            id,
            TaskEntry {
                fut: Some(fut),
                queued: true,
                home,
                pinned: pin.is_some(),
            },
        );
        s.cores[home].run_queue.push_back(id);
        id
    }

    /// Arms a timer on the current core's wheel; the returned pair lets
    /// the sleep future refresh its waker on re-poll and disarm itself on
    /// drop.
    pub(crate) fn register_timer(&self, at: Time, waker: Waker) -> (usize, TimerId) {
        let mut s = self.sched.lock();
        let v = s.executing.unwrap_or(self.home);
        (v, s.cores[v].timers.insert(at.as_nanos(), waker))
    }

    /// Refreshes the waker of a pending timer. Returns `false` if the
    /// timer already fired (the caller should re-register).
    pub(crate) fn update_timer(&self, id: (usize, TimerId), waker: &Waker) -> bool {
        let mut s = self.sched.lock();
        match s.cores[id.0].timers.get_mut(id.1) {
            Some(slot) => {
                if !slot.will_wake(waker) {
                    *slot = waker.clone();
                }
                true
            }
            None => false,
        }
    }

    /// Disarms a timer whose sleep future was dropped or completed.
    pub(crate) fn cancel_timer(&self, id: (usize, TimerId)) {
        self.sched.lock().cores[id.0].timers.cancel(id.1);
    }

    pub(crate) fn now(&self) -> Time {
        let s = self.sched.lock();
        s.cores[s.executing.unwrap_or(self.home)].now
    }

    pub(crate) fn charge(&self, d: Dur) {
        let mut s = self.sched.lock();
        let v = s.executing.unwrap_or(self.home);
        s.cores[v].charge += d;
    }

    /// Charges a heap allocation against the GC model, if one is attached.
    pub(crate) fn heap_alloc(&self, bytes: u64, long_lived: bool, costs: &mirage_hypervisor::CostTable) {
        let mut s = self.sched.lock();
        let v = s.executing.unwrap_or(self.home);
        if let Some(heap) = s.heap.as_mut() {
            let cost = heap.alloc(bytes, long_lived, costs);
            s.cores[v].charge += cost;
        }
    }

    pub(crate) fn heap_release(&self, bytes: u64) {
        let mut s = self.sched.lock();
        if let Some(h) = s.heap.as_mut() {
            h.release(bytes);
        }
    }

    /// Polls runnable tasks on every core until none remain and no timer
    /// has expired.
    ///
    /// `drain_charge(core, charge)` reports a core's virtual time as a
    /// function of the charge it accumulated, so CPU-bound work delays
    /// that core's timers exactly as it would on real silicon — and only
    /// that core's: the lanes advance independently. Which non-empty core
    /// polls next is a seeded draw, giving SMP runs a reproducible but
    /// adversarially shuffled interleaving.
    pub(crate) fn run_until_stalled(
        &self,
        thread_switch: Dur,
        mut drain_charge: impl FnMut(usize, Dur) -> Time,
    ) -> StallReport {
        let mut polls = 0u64;
        let ncores = self.cores();
        loop {
            // Advance every core's clock, then fire its expired timers.
            let mut any_fired = false;
            for v in 0..ncores {
                let pending = {
                    let mut s = self.sched.lock();
                    std::mem::replace(&mut s.cores[v].charge, Dur::ZERO)
                };
                let now = drain_charge(v, pending);
                let mut fired = Vec::new();
                {
                    let mut s = self.sched.lock();
                    s.cores[v].now = now;
                    s.cores[v].timers.advance(now.as_nanos(), |_, w| fired.push(w));
                }
                // Wake outside the lock: TaskWaker::wake re-locks.
                any_fired |= !fired.is_empty();
                for w in fired {
                    w.wake();
                }
            }

            let next = {
                let mut s = self.sched.lock();
                s.steal_for_idle();
                let nonempty: Vec<usize> = (0..ncores)
                    .filter(|&v| !s.cores[v].run_queue.is_empty())
                    .collect();
                match nonempty.len() {
                    0 => None,
                    1 => {
                        let v = nonempty[0];
                        Some((v, s.cores[v].run_queue.pop_front().expect("non-empty")))
                    }
                    n => {
                        let v = nonempty[s.rng.gen_index(n)];
                        Some((v, s.cores[v].run_queue.pop_front().expect("non-empty")))
                    }
                }
            };
            let Some((core, id)) = next else {
                if any_fired {
                    continue;
                }
                break;
            };

            // Take the future out so polling happens without the lock.
            let fut = {
                let mut s = self.sched.lock();
                match s.tasks.get_mut(&id) {
                    Some(entry) => {
                        entry.queued = false;
                        entry.fut.take()
                    }
                    None => None,
                }
            };
            let Some(mut fut) = fut else { continue };

            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                sched: Arc::downgrade(&self.sched),
            }));
            let mut cx = Context::from_waker(&waker);
            polls += 1;
            {
                let mut s = self.sched.lock();
                s.executing = Some(core);
                s.cores[core].charge += thread_switch;
            }
            let outcome = fut.as_mut().poll(&mut cx);
            {
                let mut s = self.sched.lock();
                s.executing = None;
                match outcome {
                    Poll::Ready(()) => {
                        s.tasks.remove(&id);
                    }
                    Poll::Pending => {
                        if let Some(entry) = s.tasks.get_mut(&id) {
                            entry.fut = Some(fut);
                        }
                    }
                }
            }
        }
        let mut s = self.sched.lock();
        let next_deadline = (0..ncores)
            .filter_map(|v| s.cores[v].timers.next_deadline())
            .min()
            .map(Time::from_nanos);
        StallReport {
            next_deadline,
            live_tasks: s.tasks.len(),
            polls,
        }
    }

    pub(crate) fn live_tasks(&self) -> usize {
        self.sched.lock().tasks.len()
    }
}
