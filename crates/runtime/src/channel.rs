//! Asynchronous channels and notification primitives.
//!
//! Mirage structures its stacks as lightweight threads connected by typed
//! streams (the "channel iteratees" of §3.5). This module provides the
//! plumbing: an unbounded MPSC channel, a oneshot cell (used by join
//! handles), and a [`Notify`] edge-trigger that the synchronous device
//! service code uses to wake protocol tasks.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use mirage_testkit::sync::Mutex;

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel is closed")
    }
}

impl std::error::Error for Closed {}

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    state: Arc<Mutex<ChanState<T>>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.lock().senders += 1;
        Sender {
            state: Arc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking the receiver. Usable from both async tasks
    /// and the synchronous device-service path.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.state.lock();
        if !st.receiver_alive {
            return Err(value);
        }
        st.queue.push_back(value);
        if let Some(w) = st.recv_waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Number of queued items (backpressure signal).
    pub fn queued(&self) -> usize {
        self.state.lock().queue.len()
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    state: Arc<Mutex<ChanState<T>>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver")
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.lock().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Awaits the next value.
    ///
    /// # Errors
    ///
    /// [`Closed`] once the queue is drained and all senders are dropped.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking pop (for the synchronous device path).
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> std::fmt::Debug for Recv<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Recv")
    }
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, Closed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.rx.state.lock();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Ok(v));
        }
        if st.senders == 0 {
            return Poll::Ready(Err(Closed));
        }
        st.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Creates an unbounded MPSC channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Arc::new(Mutex::new(ChanState {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: Arc::clone(&state),
        },
        Receiver { state },
    )
}

// ---------------------------------------------------------------------------

struct NotifyState {
    pending: u64,
    wakers: Vec<Waker>,
}

/// An edge-triggered wakeup: callers `await` [`Notify::notified`]; the
/// device-service path calls [`Notify::notify_one`]/[`Notify::notify_all`].
/// Notifications are counted, so a notify with no waiter is not lost.
#[derive(Clone)]
pub struct Notify {
    state: Arc<Mutex<NotifyState>>,
}

impl std::fmt::Debug for Notify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Notify(pending={})", self.state.lock().pending)
    }
}

impl Default for Notify {
    fn default() -> Self {
        Notify::new()
    }
}

impl Notify {
    /// A fresh notifier with no pending signals.
    pub fn new() -> Notify {
        Notify {
            state: Arc::new(Mutex::new(NotifyState {
                pending: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Signals one pending notification.
    pub fn notify_one(&self) {
        let mut st = self.state.lock();
        st.pending += 1;
        if let Some(w) = st.wakers.pop() {
            w.wake();
        }
    }

    /// Wakes every current waiter (they each consume one signal; extra
    /// signals accumulate).
    pub fn notify_all(&self) {
        let mut st = self.state.lock();
        let waiters = st.wakers.len().max(1) as u64;
        st.pending += waiters;
        for w in st.wakers.drain(..) {
            w.wake();
        }
    }

    /// Awaits the next notification.
    pub fn notified(&self) -> Notified {
        Notified {
            state: Arc::clone(&self.state),
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    state: Arc<Mutex<NotifyState>>,
}

impl std::fmt::Debug for Notified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Notified")
    }
}

impl Future for Notified {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock();
        if st.pending > 0 {
            st.pending -= 1;
            Poll::Ready(())
        } else {
            st.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------

pub(crate) struct OneshotState<T> {
    pub(crate) value: Option<T>,
    pub(crate) waker: Option<Waker>,
    pub(crate) done: bool,
}

/// The awaitable result of a spawned task — see
/// [`Runtime::spawn`](crate::Runtime::spawn).
pub struct JoinHandle<T> {
    pub(crate) state: Arc<Mutex<OneshotState<T>>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle")
    }
}

impl<T> JoinHandle<T> {
    /// Whether the task has completed.
    pub fn is_done(&self) -> bool {
        self.state.lock().done
    }

    /// Takes the result if the task has completed (non-blocking).
    pub fn try_take(&self) -> Option<T> {
        self.state.lock().value.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock();
        if let Some(v) = st.value.take() {
            return Poll::Ready(v);
        }
        assert!(
            !st.done,
            "JoinHandle polled after the result was already taken"
        );
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// Cross-core wakeup contract: every channel endpoint must be `Send` (so a
// task holding it can be work-stolen to another core) and `Sync` (so the
// synchronous device-service path on one core can signal a task homed on
// another). The shims are std::sync-backed, so these hold structurally —
// the assertions pin that down at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Sender<u64>>();
    assert_send_sync::<Receiver<u64>>();
    assert_send_sync::<Notify>();
    assert_send_sync::<Notified>();
    assert_send_sync::<JoinHandle<u64>>();
    assert_send_sync::<Closed>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Runtime, UnikernelGuest};
    use mirage_hypervisor::Hypervisor;

    #[test]
    fn two_executor_ping_pong_crosses_cores() {
        // A task pinned to core 0 and one pinned to core 1 volley a
        // counter over two channels: every send is a cross-core wakeup.
        let rt = Runtime::smp(2);
        let guest = UnikernelGuest::with_runtime(rt, |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let (tx_ping, mut rx_ping) = channel::<u32>();
                let (tx_pong, mut rx_pong) = channel::<u32>();
                let rt3 = rt2.clone();
                let ponger = rt2.spawn_on(1, async move {
                    let mut last = 0;
                    while let Ok(v) = rx_ping.recv().await {
                        assert_eq!(rt3.current_core(), 1, "ponger migrated");
                        last = v;
                        if tx_pong.send(v + 1).is_err() {
                            break;
                        }
                    }
                    last
                });
                let rt4 = rt2.clone();
                let pinger = rt2.spawn_on(0, async move {
                    let mut v = 0;
                    for _ in 0..50 {
                        assert_eq!(rt4.current_core(), 0, "pinger migrated");
                        tx_ping.send(v).unwrap();
                        v = rx_pong.recv().await.unwrap() + 1;
                    }
                    drop(tx_ping);
                    v
                });
                let got = pinger.await;
                let last_ping = ponger.await;
                assert_eq!(got, 100, "50 round trips, +2 each");
                assert_eq!(last_ping, 98);
                0
            })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain_vcpus("pingpong", 64, Box::new(guest), 2);
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
    }
}
