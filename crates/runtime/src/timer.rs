//! Virtual-time sleep futures.
//!
//! "Thread scheduling is platform-independent with timers stored in a
//! heap-allocated OCaml priority queue" (paper §3.3). Here, the timer
//! store lives in the executor core — a hashed timer wheel rather than a
//! priority queue, so a million armed sleeps cost nothing per tick — and
//! [`Sleep`] futures register their wakers against it. Each sleep owns at
//! most one wheel entry: re-polls refresh the stored waker in place and
//! dropping the future (e.g. the losing arm of a select) disarms it.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use mirage_hypervisor::Time;
use mirage_testkit::wheel::TimerId;

use crate::exec::CoreHandle;

/// Future returned by [`Runtime::sleep_until`](crate::Runtime::sleep_until);
/// resolves when virtual time reaches the deadline.
#[derive(Debug)]
pub struct Sleep {
    pub(crate) deadline: Time,
    pub(crate) core: SleepCore,
    /// `(core, wheel entry)` — sleeps arm the wheel of whichever core
    /// polled them first and keep refreshing that same entry.
    pub(crate) id: Option<(usize, TimerId)>,
}

pub(crate) struct SleepCore(pub(crate) CoreHandle);

impl std::fmt::Debug for SleepCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SleepCore")
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.deadline == Time::MAX {
            // "Never": park without registering a timer, so the domain can
            // still block purely on events.
            return Poll::Pending;
        }
        if self.core.0.now() >= self.deadline {
            if let Some(id) = self.id.take() {
                self.core.0.cancel_timer(id);
            }
            Poll::Ready(())
        } else {
            match self.id {
                Some(id) if self.core.0.update_timer(id, cx.waker()) => {}
                _ => {
                    let id = self.core.0.register_timer(self.deadline, cx.waker().clone());
                    self.id = Some(id);
                }
            }
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // Disarm: the losing arm of a select would otherwise leave a stale
        // entry in the wheel until its deadline cycled around.
        if let Some(id) = self.id.take() {
            self.core.0.cancel_timer(id);
        }
    }
}

/// Future that yields once, letting other runnable tasks execute — the
/// cooperative scheduling point.
#[derive(Debug, Default)]
pub struct YieldNow {
    polled: bool,
}

impl YieldNow {
    /// A fresh yield point.
    pub fn new() -> YieldNow {
        YieldNow::default()
    }
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Wraps a future with a virtual-time deadline.
///
/// Resolves to `Ok(value)` if the inner future completes first, `Err(Late)`
/// if the deadline passes — the mechanism behind Mirage's combinator-based
/// resource cleanup ("when the function terminates, whether normally via
/// timeout or an unknown exception, the grant reference is freed", §3.4.1).
#[derive(Debug)]
pub struct Timeout<F> {
    pub(crate) inner: F,
    pub(crate) sleep: Sleep,
}

/// The error produced when a [`Timeout`] deadline passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Late;

impl std::fmt::Display for Late {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline elapsed before the future completed")
    }
}

impl std::error::Error for Late {}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Result<F::Output, Late>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Poll::Ready(v) = Pin::new(&mut this.inner).poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Late)),
            Poll::Pending => Poll::Pending,
        }
    }
}
