//! Racing combinators — Lwt's `choose` (paper §3.3: "composable
//! higher-order functions, also known as combinators, are used throughout
//! Mirage").

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// The winner of a two-way race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// The winner of a three-way race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either3<A, B, C> {
    /// The first future finished first.
    First(A),
    /// The second future finished first.
    Second(B),
    /// The third future finished first.
    Third(C),
}

/// Future racing two futures; the loser is dropped (cancelled).
#[derive(Debug)]
pub struct Select2<A, B> {
    a: A,
    b: B,
}

impl<A: Future + Unpin, B: Future + Unpin> Future for Select2<A, B> {
    type Output = Either<A::Output, B::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = Pin::new(&mut self.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut self.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Races two futures, returning whichever completes first.
pub fn select2<A: Future + Unpin, B: Future + Unpin>(a: A, b: B) -> Select2<A, B> {
    Select2 { a, b }
}

/// Future racing three futures.
#[derive(Debug)]
pub struct Select3<A, B, C> {
    a: A,
    b: B,
    c: C,
}

impl<A: Future + Unpin, B: Future + Unpin, C: Future + Unpin> Future for Select3<A, B, C> {
    type Output = Either3<A::Output, B::Output, C::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = Pin::new(&mut self.a).poll(cx) {
            return Poll::Ready(Either3::First(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut self.b).poll(cx) {
            return Poll::Ready(Either3::Second(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut self.c).poll(cx) {
            return Poll::Ready(Either3::Third(v));
        }
        Poll::Pending
    }
}

/// Races three futures, returning whichever completes first.
pub fn select3<A: Future + Unpin, B: Future + Unpin, C: Future + Unpin>(
    a: A,
    b: B,
    c: C,
) -> Select3<A, B, C> {
    Select3 { a, b, c }
}
