//! The Mirage language runtime — cooperative threading over virtual time
//! (paper §3.3).
//!
//! Mirage replaced the OCaml runtime's concurrency layer with Lwt: threads
//! are heap-allocated values scheduled cooperatively, the VM "is thus
//! either executing OCaml code or blocked, with no internal preemption or
//! asynchronous interrupts", and the run-loop is the only Xen-specific
//! piece. This crate reproduces that architecture:
//!
//! * [`Runtime`] — spawn lightweight threads (plain Rust futures), sleep on
//!   the virtual clock, await channels.
//! * [`channel`] — MPSC streams, [`channel::Notify`] edge triggers and
//!   [`channel::JoinHandle`]s.
//! * [`UnikernelGuest`] — the run-loop: services device state machines,
//!   drains the executor, and converts the stall state into a
//!   `domainpoll`-style [`mirage_hypervisor::Wake`].
//!
//! Thread construction can be charged against a
//! [`mirage_pvboot::heap::GcHeap`] cost model, which is how the
//! Figure 7 experiments account for garbage-collection pressure.
//!
//! # Example
//!
//! ```
//! use mirage_hypervisor::{Dur, Hypervisor};
//! use mirage_runtime::{Runtime, UnikernelGuest};
//!
//! let guest = UnikernelGuest::new(|_env, rt| {
//!     let rt2 = rt.clone();
//!     rt.spawn(async move {
//!         rt2.sleep(Dur::millis(10)).await;
//!         42
//!     })
//! });
//! let mut hv = Hypervisor::new();
//! let dom = hv.create_domain("demo", 32, Box::new(guest));
//! hv.run();
//! assert_eq!(hv.exit_code(dom), Some(42));
//! ```

pub mod channel;
mod exec;
pub mod select;
pub mod timer;

use std::future::Future;
use std::sync::Arc;

use mirage_testkit::sync::Mutex;

use mirage_hypervisor::event::Port;
use mirage_hypervisor::{CostTable, DomainEnv, Dur, Guest, Step, Time, Wake};
use mirage_pvboot::heap::GcHeap;

use channel::{JoinHandle, OneshotState};
use exec::CoreHandle;
pub use exec::StallReport;
use timer::{Sleep, SleepCore, Timeout, YieldNow};

/// Heap bytes charged per spawned lightweight thread (closure + timer
/// record + scheduler node; see [`mirage_pvboot::heap::OBJ_BYTES`]).
pub const THREAD_HEAP_BYTES: u64 = 2 * mirage_pvboot::heap::OBJ_BYTES;

/// Handle to the cooperative executor. Cheap to clone; all clones share one
/// scheduler.
#[derive(Clone)]
pub struct Runtime {
    core: CoreHandle,
    costs: Arc<Mutex<CostTable>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("live_tasks", &self.core.live_tasks())
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

impl Runtime {
    /// A single-core runtime with no GC heap model attached.
    pub fn new() -> Runtime {
        Runtime::smp(1)
    }

    /// A runtime with `cores` per-vCPU executors: one run queue, timer
    /// wheel and virtual clock each, with deterministic seeded work
    /// stealing for non-pinned tasks. `smp(1)` behaves exactly like the
    /// classic single-threaded executor.
    pub fn smp(cores: usize) -> Runtime {
        Runtime {
            core: CoreHandle::new(cores),
            costs: Arc::new(Mutex::new(CostTable::defaults())),
        }
    }

    /// A runtime whose thread allocations are charged against `heap` —
    /// used by the Figure 7 experiments.
    pub fn with_heap(heap: GcHeap) -> Runtime {
        let rt = Runtime::new();
        rt.core.sched.lock().heap = Some(heap);
        rt
    }

    /// Number of executor cores.
    pub fn cores(&self) -> usize {
        self.core.cores()
    }

    /// The core work charged right now would land on: the polling core
    /// inside a task, this handle's home core outside one.
    pub fn current_core(&self) -> usize {
        self.core.current_core()
    }

    /// This runtime, homed on core `v`: spawns and charges made outside
    /// any task through the returned handle land on `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid core index.
    pub fn on_core(&self, v: usize) -> Runtime {
        Runtime {
            core: self.core.on_core(v),
            costs: Arc::clone(&self.costs),
        }
    }

    /// Tasks migrated between cores by the work-stealing scheduler.
    pub fn steals(&self) -> u64 {
        self.core.sched.lock().steals
    }

    /// Spawns a lightweight thread and returns a handle to await its
    /// result.
    ///
    /// Like Lwt threads, spawning allocates on the (modelled) heap and the
    /// thread runs only when the executor is driven.
    pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        self.spawn_with(fut, None)
    }

    /// Spawns a lightweight thread pinned to core `v`: it runs only on
    /// that core's queue and is never work-stolen. This is how per-shard
    /// net-stack workers keep a flow's TCB on exactly one core.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid core index.
    pub fn spawn_on<T, F>(&self, v: usize, fut: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        self.spawn_with(fut, Some(v))
    }

    fn spawn_with<T, F>(&self, fut: F, pin: Option<usize>) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        {
            let costs = self.costs.lock().clone();
            self.core.heap_alloc(THREAD_HEAP_BYTES, true, &costs);
        }
        let state = Arc::new(Mutex::new(OneshotState {
            value: None,
            waker: None,
            done: false,
        }));
        let state2 = Arc::clone(&state);
        let core = self.core.clone();
        self.core.spawn(
            Box::pin(async move {
                let value = fut.await;
                core.heap_release(THREAD_HEAP_BYTES);
                let mut st = state2.lock();
                st.value = Some(value);
                st.done = true;
                if let Some(w) = st.waker.take() {
                    w.wake();
                }
            }),
            pin,
        );
        JoinHandle { state }
    }

    /// Sleeps for `d` of virtual time.
    pub fn sleep(&self, d: Dur) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Sleeps until the absolute instant `t`.
    pub fn sleep_until(&self, t: Time) -> Sleep {
        Sleep {
            deadline: t,
            core: SleepCore(self.core.clone()),
            id: None,
        }
    }

    /// Current virtual time as the executor last observed it.
    pub fn now(&self) -> Time {
        self.core.now()
    }

    /// Yields to other runnable threads once.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow::new()
    }

    /// Bounds `fut` by a deadline `d` from now.
    pub fn timeout<F: Future + Unpin>(&self, d: Dur, fut: F) -> Timeout<F> {
        Timeout {
            inner: fut,
            sleep: self.sleep(d),
        }
    }

    /// Charges `d` of modelled CPU work from inside a task.
    pub fn charge(&self, d: Dur) {
        self.core.charge(d);
    }

    /// The cost table as of the last scheduling quantum.
    pub fn costs(&self) -> CostTable {
        self.costs.lock().clone()
    }

    /// Charges a heap allocation of `bytes` against the GC model (no-op
    /// without one).
    pub fn alloc(&self, bytes: u64, long_lived: bool) {
        let costs = self.costs.lock().clone();
        self.core.heap_alloc(bytes, long_lived, &costs);
    }

    /// Number of live (incomplete) threads.
    pub fn live_tasks(&self) -> usize {
        self.core.live_tasks()
    }

    /// Threads spawned over the runtime's lifetime.
    pub fn spawned_total(&self) -> u64 {
        self.core.sched.lock().spawned_total
    }

    /// GC statistics, if a heap model is attached.
    pub fn gc_stats(&self) -> Option<mirage_pvboot::heap::GcStats> {
        self.core.sched.lock().heap.as_ref().map(|h| h.stats())
    }

    /// Drives the executor until it stalls, charging all task work to
    /// `env`. This is the Xen-specific run-loop of §3.3.
    pub fn step_drive(&self, env: &mut DomainEnv<'_>) -> StallReport {
        *self.costs.lock() = env.costs().clone();
        let thread_switch = env.costs().thread_switch;
        // Route each executor core to its own vCPU charge lane; if the
        // domain has fewer vCPUs than the runtime has cores, the excess
        // cores stack onto the last lane (over-committed guest).
        let max_lane = env.vcpus() - 1;
        self.core.run_until_stalled(thread_switch, |core, charge| {
            let lane = core.min(max_lane);
            env.consume_on(lane, charge);
            env.now_on(lane)
        })
    }
}

/// A device driver's hook into the unikernel run-loop.
///
/// Device service code is *synchronous* — it runs with the [`DomainEnv`] in
/// hand, moves data between shared rings and runtime channels, and wakes
/// protocol threads via [`channel::Notify`]. (In Mirage terms: "only the
/// run-loop is Xen-specific, to interface with PVBoot".)
pub trait DeviceService: Send {
    /// Moves pending work between the hypervisor interface and the runtime.
    /// Returns `true` if any progress was made (more servicing may be
    /// needed after the executor runs).
    fn service(&mut self, env: &mut DomainEnv<'_>, rt: &Runtime) -> bool;

    /// Event-channel ports whose notifications should wake this domain.
    fn watch_ports(&self) -> Vec<Port>;
}

type BootFn =
    Box<dyn FnOnce(&mut DomainEnv<'_>, &Runtime) -> JoinHandle<i64> + Send + 'static>;

/// The standard Mirage guest: boot, then loop `{service devices; run
/// threads}` until the main thread returns, exiting the VM with its value.
pub struct UnikernelGuest {
    rt: Runtime,
    devices: Vec<Box<dyn DeviceService>>,
    boot: Option<BootFn>,
    main: Option<JoinHandle<i64>>,
}

impl std::fmt::Debug for UnikernelGuest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnikernelGuest")
            .field("devices", &self.devices.len())
            .field("booted", &self.main.is_some())
            .finish()
    }
}

impl UnikernelGuest {
    /// A guest whose `boot` closure runs on the first scheduling quantum
    /// (PVBoot's "jump to an entry function") and returns the main thread.
    pub fn new<F, Fut, T>(boot: F) -> UnikernelGuest
    where
        F: FnOnce(&mut DomainEnv<'_>, &Runtime) -> Fut + Send + 'static,
        Fut: IntoMainHandle<T>,
        T: Send + 'static,
    {
        UnikernelGuest::with_runtime(Runtime::new(), boot)
    }

    /// Same, over a caller-configured runtime (e.g. one with a GC heap
    /// model attached).
    pub fn with_runtime<F, Fut, T>(rt: Runtime, boot: F) -> UnikernelGuest
    where
        F: FnOnce(&mut DomainEnv<'_>, &Runtime) -> Fut + Send + 'static,
        Fut: IntoMainHandle<T>,
        T: Send + 'static,
    {
        UnikernelGuest {
            rt,
            devices: Vec::new(),
            boot: Some(Box::new(move |env, rt| boot(env, rt).into_main_handle(rt))),
            main: None,
        }
    }

    /// Registers a device driver with the run-loop.
    pub fn add_device(&mut self, dev: Box<dyn DeviceService>) {
        self.devices.push(dev);
    }

    /// The guest's runtime handle (for wiring devices before boot).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }
}

/// Conversion from a boot closure's return value into the main-thread
/// handle. Implemented for [`JoinHandle`] and for plain exit codes.
pub trait IntoMainHandle<T> {
    /// Wraps the value as the domain's main thread.
    fn into_main_handle(self, rt: &Runtime) -> JoinHandle<i64>;
}

impl IntoMainHandle<i64> for JoinHandle<i64> {
    fn into_main_handle(self, _rt: &Runtime) -> JoinHandle<i64> {
        self
    }
}

impl IntoMainHandle<i64> for i64 {
    fn into_main_handle(self, rt: &Runtime) -> JoinHandle<i64> {
        rt.spawn(async move { self })
    }
}

impl Guest for UnikernelGuest {
    fn step(&mut self, env: &mut DomainEnv<'_>) -> Step {
        if let Some(boot) = self.boot.take() {
            self.main = Some(boot(env, &self.rt));
        }
        let mut report;
        loop {
            let mut progressed = false;
            for dev in &mut self.devices {
                // Service each device on the vCPU its event channel is
                // steered to (EVTCHNOP_bind_vcpu), so a multi-queue NIC's
                // per-queue work lands on the owning core's lane.
                let lane = dev
                    .watch_ports()
                    .first()
                    .and_then(|p| env.evtchn_vcpu(*p).ok())
                    .unwrap_or(0)
                    .min(env.vcpus() - 1);
                env.on_vcpu(lane);
                progressed |= dev.service(env, &self.rt);
            }
            env.on_vcpu(0);
            report = self.rt.step_drive(env);
            if !progressed && report.polls == 0 {
                break;
            }
        }
        if let Some(main) = &self.main {
            if main.is_done() {
                let code = main.try_take().unwrap_or(0);
                return Step::Exit(code);
            }
        }
        let mut ports = Vec::new();
        for dev in &self.devices {
            ports.extend(dev.watch_ports());
        }
        Step::Yield(Wake {
            deadline: report.next_deadline,
            ports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_hypervisor::Hypervisor;
    use mirage_pvboot::heap::{EnvOverheads, GcHeap, HeapBacking};

    fn run_guest(guest: UnikernelGuest) -> (Hypervisor, mirage_hypervisor::DomainId) {
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("test", 64, Box::new(guest));
        hv.run();
        (hv, dom)
    }

    #[test]
    fn main_thread_exit_code_becomes_vm_exit_code() {
        let guest = UnikernelGuest::new(|_env, rt| {
            let rt = rt.clone();
            rt.clone().spawn(async move {
                rt.yield_now().await;
                99
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(99));
    }

    #[test]
    fn sleeping_threads_wake_in_deadline_order() {
        let guest = UnikernelGuest::new(|_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let (tx, mut rx) = channel::channel::<u32>();
                for (i, ms) in [(1u32, 30u64), (2, 10), (3, 20)] {
                    let rt3 = rt2.clone();
                    let tx = tx.clone();
                    rt2.spawn(async move {
                        rt3.sleep(Dur::millis(ms)).await;
                        let _ = tx.send(i);
                    });
                }
                drop(tx);
                let mut order = Vec::new();
                while let Ok(v) = rx.recv().await {
                    order.push(v);
                }
                assert_eq!(order, vec![2, 3, 1], "woken by deadline, not spawn order");
                0
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(0));
        assert_eq!(hv.now(), Time::ZERO + Dur::millis(30) + hv_overhead(&hv));
    }

    /// Scheduler/poll costs accumulated on top of the last timer deadline.
    fn hv_overhead(hv: &Hypervisor) -> Dur {
        hv.now().saturating_since(Time::ZERO + Dur::millis(30))
    }

    #[test]
    fn ten_thousand_sleeping_threads_all_complete() {
        let guest = UnikernelGuest::new(|_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let handles: Vec<_> = (0..10_000u64)
                    .map(|i| {
                        let rt3 = rt2.clone();
                        rt2.spawn(async move {
                            rt3.sleep(Dur::micros(500 + (i % 1000))).await;
                            1u64
                        })
                    })
                    .collect();
                let mut sum = 0;
                for h in handles {
                    sum += h.await;
                }
                assert_eq!(sum, 10_000);
                0
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn timeout_fires_when_inner_is_slow() {
        let guest = UnikernelGuest::new(|_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let slow = Box::pin(rt2.sleep(Dur::secs(10)));
                match rt2.timeout(Dur::millis(1), slow).await {
                    Err(timer::Late) => 0,
                    Ok(()) => 1,
                }
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(0));
        assert!(hv.now() < Time::ZERO + Dur::secs(1), "did not wait 10s");
    }

    #[test]
    fn channels_carry_data_between_threads() {
        let guest = UnikernelGuest::new(|_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let (tx, mut rx) = channel::channel::<u64>();
                let producer = rt2.spawn(async move {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                });
                let mut sum = 0;
                for _ in 0..100 {
                    sum += rx.recv().await.unwrap();
                }
                producer.await;
                assert!(rx.recv().await.is_err(), "channel closed after producer");
                sum as i64
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(4950));
    }

    #[test]
    fn notify_wakes_waiting_thread() {
        let guest = UnikernelGuest::new(|_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let n = channel::Notify::new();
                let n2 = n.clone();
                let rt3 = rt2.clone();
                let waiter = rt2.spawn(async move {
                    n2.notified().await;
                    rt3.now()
                });
                rt2.sleep(Dur::millis(7)).await;
                n.notify_one();
                let woke_at = waiter.await;
                assert!(woke_at >= Time::ZERO + Dur::millis(7));
                0
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn heap_model_charges_thread_construction() {
        let heap = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), 1 << 32);
        let rt = Runtime::with_heap(heap);
        let guest = UnikernelGuest::with_runtime(rt, |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let handles: Vec<_> = (0..50_000)
                    .map(|_| {
                        let rt3 = rt2.clone();
                        rt2.spawn(async move {
                            rt3.sleep(Dur::millis(1)).await;
                        })
                    })
                    .collect();
                for h in handles {
                    h.await;
                }
                0
            })
        });
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(0));
        // 50k threads x 96 B exceeds the 2 MiB minor heap: collections ran.
        // (The runtime handle is consumed by the guest; verify via timing —
        // GC work must have inflated virtual time beyond the 1 ms sleeps.)
        assert!(hv.now() > Time::ZERO + Dur::millis(1));
    }

    #[test]
    fn deterministic_schedules_are_reproducible() {
        let run = || {
            let guest = UnikernelGuest::new(|_env, rt| {
                let rt2 = rt.clone();
                rt.spawn(async move {
                    let mut acc = 0u64;
                    for i in 0..50u64 {
                        let rt3 = rt2.clone();
                        let h = rt2.spawn(async move {
                            rt3.sleep(Dur::micros(i * 13 % 97)).await;
                            i
                        });
                        acc += h.await;
                    }
                    acc as i64
                })
            });
            let mut hv = Hypervisor::new();
            let dom = hv.create_domain("det", 64, Box::new(guest));
            hv.run();
            (hv.exit_code(dom), hv.now(), hv.stats().steps)
        };
        assert_eq!(run(), run(), "identical schedule on every run");
    }

    #[test]
    fn plain_exit_code_boot_closure() {
        let guest = UnikernelGuest::new(|_env, _rt| 5i64);
        let (hv, dom) = run_guest(guest);
        assert_eq!(hv.exit_code(dom), Some(5));
    }

    #[test]
    fn smp_pinned_tasks_stay_on_their_core() {
        let rt = Runtime::smp(4);
        let rt_outer = rt.clone();
        let guest = UnikernelGuest::with_runtime(rt, |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let mut handles = Vec::new();
                for v in 0..4usize {
                    let rt3 = rt2.clone();
                    handles.push(rt2.spawn_on(v, async move {
                        // Re-yield a few times: the observed core must
                        // never change for a pinned task.
                        let mut cores = Vec::new();
                        for _ in 0..3 {
                            cores.push(rt3.current_core());
                            rt3.yield_now().await;
                        }
                        assert!(cores.iter().all(|&c| c == v), "pinned to {v}, saw {cores:?}");
                        v as u64
                    }));
                }
                let mut sum = 0;
                for h in handles {
                    sum += h.await;
                }
                sum as i64
            })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain_vcpus("smp", 64, Box::new(guest), 4);
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(6));
        assert_eq!(rt_outer.cores(), 4);
    }

    #[test]
    fn smp_cores_charge_parallel_lanes() {
        // Two 5ms CPU-bound tasks pinned to different cores of a 2-vCPU
        // domain must overlap in virtual time: the domain finishes in
        // ~5ms, not 10ms.
        let rt = Runtime::smp(2);
        let guest = UnikernelGuest::with_runtime(rt, |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let mut handles = Vec::new();
                for v in 0..2usize {
                    let rt3 = rt2.clone();
                    handles.push(rt2.spawn_on(v, async move {
                        rt3.charge(Dur::millis(5));
                    }));
                }
                for h in handles {
                    h.await;
                }
                0
            })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain_vcpus("par", 64, Box::new(guest), 2);
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
        assert!(
            hv.now() < Time::ZERO + Dur::millis(8),
            "lanes must overlap: finished at {:?}",
            hv.now()
        );
        assert!(hv.now() >= Time::ZERO + Dur::millis(5));
    }

    #[test]
    fn smp_work_stealing_moves_unpinned_backlog() {
        // A burst of unpinned tasks spawned from core 0: idle cores must
        // steal some of them.
        let rt = Runtime::smp(4);
        let rt_outer = rt.clone();
        let guest = UnikernelGuest::with_runtime(rt, |_env, rt| {
            let rt2 = rt.clone();
            rt.spawn(async move {
                let handles: Vec<_> = (0..64u64)
                    .map(|i| {
                        let rt3 = rt2.clone();
                        rt2.spawn(async move {
                            rt3.charge(Dur::micros(50));
                            rt3.yield_now().await;
                            i
                        })
                    })
                    .collect();
                let mut sum = 0;
                for h in handles {
                    sum += h.await;
                }
                sum as i64
            })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain_vcpus("steal", 64, Box::new(guest), 4);
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(2016));
        assert!(rt_outer.steals() > 0, "idle cores never stole");
    }

    #[test]
    fn smp_schedule_is_deterministic() {
        let run = || {
            let rt = Runtime::smp(4);
            let rt_outer = rt.clone();
            let guest = UnikernelGuest::with_runtime(rt, |_env, rt| {
                let rt2 = rt.clone();
                rt.spawn(async move {
                    let mut acc = 0u64;
                    for i in 0..40u64 {
                        let rt3 = rt2.clone();
                        let h = rt2.spawn(async move {
                            rt3.charge(Dur::micros(i % 7));
                            rt3.sleep(Dur::micros(i * 13 % 97)).await;
                            i
                        });
                        acc += h.await;
                    }
                    acc as i64
                })
            });
            let mut hv = Hypervisor::new();
            let dom = hv.create_domain_vcpus("det", 64, Box::new(guest), 4);
            hv.run();
            (hv.exit_code(dom), hv.now(), hv.stats().steps, rt_outer.steals())
        };
        assert_eq!(run(), run(), "identical SMP schedule on every run");
    }
}
