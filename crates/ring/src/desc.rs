//! The descriptor ring: fixed-size request/response slots in one shared
//! page, tracked by producer/consumer pointers (paper §3.4, Figure 3).

use mirage_cstruct::cstruct_accessors;
use mirage_hypervisor::grant::SharedPage;

cstruct_accessors! {
    /// The shared ring header — the exact struct of the paper's Figure 3.
    pub mod ring_hdr (LittleEndian) {
        (get_req_prod, set_req_prod): u32 @ 0,
        (get_req_event, set_req_event): u32 @ 4,
        (get_rsp_prod, set_rsp_prod): u32 @ 8,
        (get_rsp_event, set_rsp_event): u32 @ 12,
        (get_stuff, set_stuff): u64 @ 16,
    }
}

/// Byte offset where slots begin (header padded to a cache line).
const SLOTS_OFFSET: usize = 64;

/// Stride of one slot. The first two bytes carry the descriptor length,
/// the rest the descriptor body.
pub const SLOT_BYTES: usize = 64;

/// Maximum descriptor payload per slot.
pub const SLOT_PAYLOAD: usize = SLOT_BYTES - 2;

/// Number of slots in a single-page ring (rounded down to a power of two so
/// index arithmetic is a mask, as in Xen).
pub const RING_SIZE: u32 = {
    let raw = (mirage_hypervisor::PAGE_SIZE - SLOTS_OFFSET) / SLOT_BYTES;
    // largest power of two <= raw
    let mut p = 1;
    while p * 2 <= raw {
        p *= 2;
    }
    p as u32
};

/// Errors from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// No free request slots — the frontend must back off (flow control).
    Full,
    /// Descriptor exceeds [`SLOT_PAYLOAD`].
    TooLarge,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            RingError::Full => "ring is full; frontend must wait for responses",
            RingError::TooLarge => "descriptor exceeds the slot payload size",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RingError {}

fn slot_range(idx: u32) -> std::ops::Range<usize> {
    let slot = (idx % RING_SIZE) as usize;
    let start = SLOTS_OFFSET + slot * SLOT_BYTES;
    start..start + SLOT_BYTES
}

#[allow(dead_code)]
fn write_slot(page: &SharedPage, idx: u32, data: &[u8]) {
    page.write(|bytes| {
        let r = slot_range(idx);
        let slot = &mut bytes[r];
        slot[0..2].copy_from_slice(&(data.len() as u16).to_le_bytes());
        slot[2..2 + data.len()].copy_from_slice(data);
    });
}

fn read_slot(page: &SharedPage, idx: u32) -> Vec<u8> {
    page.read(|bytes| {
        let r = slot_range(idx);
        let slot = &bytes[r];
        let len = u16::from_le_bytes([slot[0], slot[1]]) as usize;
        slot[2..2 + len.min(SLOT_PAYLOAD)].to_vec()
    })
}

/// The guest half of a device ring: pushes requests, consumes responses.
#[derive(Debug, Clone)]
pub struct FrontRing {
    page: SharedPage,
    /// Private response-consumer index (never shared; Xen keeps the same
    /// split between shared and private indices).
    rsp_cons: u32,
}

impl FrontRing {
    /// Attaches a frontend to a fresh or existing shared ring page.
    pub fn attach(page: SharedPage) -> FrontRing {
        FrontRing { page, rsp_cons: 0 }
    }

    /// Free request slots (flow control: requests outstanding may not
    /// exceed the ring size).
    pub fn free_slots(&self) -> u32 {
        let (req_prod, _) = self.page.read(|b| {
            (ring_hdr::get_req_prod(b), ring_hdr::get_rsp_prod(b))
        });
        RING_SIZE - (req_prod.wrapping_sub(self.rsp_cons))
    }

    /// Pushes one request descriptor; returns `true` when the backend must
    /// be notified (event-index suppression).
    ///
    /// # Errors
    ///
    /// [`RingError::Full`] when flow control forbids the push;
    /// [`RingError::TooLarge`] for oversized descriptors.
    pub fn push_request(&mut self, data: &[u8]) -> Result<bool, RingError> {
        if data.len() > SLOT_PAYLOAD {
            return Err(RingError::TooLarge);
        }
        if self.free_slots() == 0 {
            return Err(RingError::Full);
        }
        let notify = self.page.write(|bytes| {
            let old_prod = ring_hdr::get_req_prod(bytes);
            let new_prod = old_prod.wrapping_add(1);
            // Write the slot, then publish the producer index (the write
            // barrier the paper's inline assembly provides).
            let r = slot_range(old_prod);
            let slot = &mut bytes[r];
            slot[0..2].copy_from_slice(&(data.len() as u16).to_le_bytes());
            slot[2..2 + data.len()].copy_from_slice(data);
            ring_hdr::set_req_prod(bytes, new_prod);
            let req_event = ring_hdr::get_req_event(bytes);
            // Notify iff the peer's announced wait point falls inside
            // (old_prod, new_prod].
            new_prod.wrapping_sub(req_event) < new_prod.wrapping_sub(old_prod)
        });
        Ok(notify)
    }

    /// Pops the next response, if any.
    pub fn take_response(&mut self) -> Option<Vec<u8>> {
        let rsp_prod = self.page.read(ring_hdr::get_rsp_prod);
        if rsp_prod == self.rsp_cons {
            return None;
        }
        let data = read_slot(&self.page, self.rsp_cons);
        self.rsp_cons = self.rsp_cons.wrapping_add(1);
        Some(data)
    }

    /// Announces the frontend is about to block until the next response.
    /// Returns `true` if responses arrived concurrently (re-poll instead of
    /// blocking) — the final check before `domainpoll`.
    pub fn enable_response_notifications(&mut self) -> bool {
        let cons = self.rsp_cons;
        self.page.write(|bytes| {
            ring_hdr::set_rsp_event(bytes, cons.wrapping_add(1));
            ring_hdr::get_rsp_prod(bytes) != cons
        })
    }

    /// Number of responses waiting.
    pub fn pending_responses(&self) -> u32 {
        let rsp_prod = self.page.read(ring_hdr::get_rsp_prod);
        rsp_prod.wrapping_sub(self.rsp_cons)
    }

    /// The shared page (to grant to the backend domain).
    pub fn page(&self) -> &SharedPage {
        &self.page
    }
}

/// The driver-domain half: consumes requests, pushes responses.
#[derive(Debug, Clone)]
pub struct BackRing {
    page: SharedPage,
    /// Private request-consumer index.
    req_cons: u32,
}

impl BackRing {
    /// Attaches a backend to the shared ring page.
    pub fn attach(page: SharedPage) -> BackRing {
        BackRing { page, req_cons: 0 }
    }

    /// Pops the next request, if any.
    pub fn take_request(&mut self) -> Option<Vec<u8>> {
        let req_prod = self.page.read(ring_hdr::get_req_prod);
        if req_prod == self.req_cons {
            return None;
        }
        let data = read_slot(&self.page, self.req_cons);
        self.req_cons = self.req_cons.wrapping_add(1);
        Some(data)
    }

    /// Pushes one response; returns `true` when the frontend must be
    /// notified.
    ///
    /// Responses always fit: they reuse the request's slot.
    ///
    /// # Errors
    ///
    /// [`RingError::TooLarge`] for oversized descriptors.
    pub fn push_response(&mut self, data: &[u8]) -> Result<bool, RingError> {
        if data.len() > SLOT_PAYLOAD {
            return Err(RingError::TooLarge);
        }
        let notify = self.page.write(|bytes| {
            let old_prod = ring_hdr::get_rsp_prod(bytes);
            let new_prod = old_prod.wrapping_add(1);
            let r = slot_range(old_prod);
            let slot = &mut bytes[r];
            slot[0..2].copy_from_slice(&(data.len() as u16).to_le_bytes());
            slot[2..2 + data.len()].copy_from_slice(data);
            ring_hdr::set_rsp_prod(bytes, new_prod);
            let rsp_event = ring_hdr::get_rsp_event(bytes);
            new_prod.wrapping_sub(rsp_event) < new_prod.wrapping_sub(old_prod)
        });
        Ok(notify)
    }

    /// Announces the backend is about to block until the next request;
    /// returns `true` if requests arrived concurrently.
    pub fn enable_request_notifications(&mut self) -> bool {
        let cons = self.req_cons;
        self.page.write(|bytes| {
            ring_hdr::set_req_event(bytes, cons.wrapping_add(1));
            ring_hdr::get_req_prod(bytes) != cons
        })
    }

    /// Number of requests waiting.
    pub fn pending_requests(&self) -> u32 {
        let req_prod = self.page.read(ring_hdr::get_req_prod);
        req_prod.wrapping_sub(self.req_cons)
    }
}

/// Creates a connected frontend/backend pair over a fresh shared page.
pub fn pair() -> (FrontRing, BackRing) {
    let page = SharedPage::new();
    (FrontRing::attach(page.clone()), BackRing::attach(page))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::{collection};

    #[test]
    fn ring_size_is_a_power_of_two() {
        let size = RING_SIZE; // runtime binding so the checks aren't const-folded
        assert!(size.is_power_of_two());
        assert!(size >= 32);
    }

    #[test]
    fn request_response_round_trip() {
        let (mut front, mut back) = pair();
        front.push_request(b"read sector 7").unwrap();
        assert_eq!(back.pending_requests(), 1);
        let req = back.take_request().unwrap();
        assert_eq!(req, b"read sector 7");
        back.push_response(b"sector 7 data").unwrap();
        assert_eq!(front.take_response().unwrap(), b"sector 7 data");
        assert_eq!(front.take_response(), None);
    }

    #[test]
    fn flow_control_blocks_at_ring_size() {
        let (mut front, mut back) = pair();
        for i in 0..RING_SIZE {
            front.push_request(&[i as u8]).unwrap();
        }
        assert_eq!(front.push_request(b"x"), Err(RingError::Full));
        // Draining requests alone does NOT free slots — responses do.
        while back.take_request().is_some() {}
        assert_eq!(front.push_request(b"x"), Err(RingError::Full));
        back.push_response(b"r").unwrap();
        assert!(front.take_response().is_some());
        assert!(front.push_request(b"x").is_ok());
    }

    #[test]
    fn oversized_descriptor_rejected() {
        let (mut front, _back) = pair();
        let big = vec![0u8; SLOT_PAYLOAD + 1];
        assert_eq!(front.push_request(&big), Err(RingError::TooLarge));
    }

    #[test]
    fn first_push_notifies_a_waiting_backend() {
        let (mut front, mut back) = pair();
        assert!(!back.enable_request_notifications(), "ring empty");
        let notify = front.push_request(b"hello").unwrap();
        assert!(notify, "backend announced it was waiting");
        // A second push while the backend has not re-armed: no notify.
        let notify2 = front.push_request(b"again").unwrap();
        assert!(!notify2, "event suppression while peer is awake");
    }

    #[test]
    fn enable_notifications_detects_race() {
        let (mut front, mut back) = pair();
        front.push_request(b"racer").unwrap();
        assert!(
            back.enable_request_notifications(),
            "data arrived before blocking: must re-poll, not sleep"
        );
    }

    #[test]
    fn response_notification_symmetric() {
        let (mut front, mut back) = pair();
        front.push_request(b"q").unwrap();
        back.take_request().unwrap();
        assert!(!front.enable_response_notifications());
        let notify = back.push_response(b"a").unwrap();
        assert!(notify);
    }

    #[test]
    fn indices_wrap_safely_across_many_cycles() {
        let (mut front, mut back) = pair();
        for round in 0..(RING_SIZE * 5) {
            front.push_request(&round.to_le_bytes()).unwrap();
            let req = back.take_request().unwrap();
            assert_eq!(req, round.to_le_bytes());
            back.push_response(&round.to_le_bytes()).unwrap();
            assert_eq!(front.take_response().unwrap(), round.to_le_bytes());
        }
    }

    mirage_testkit::property! {
        /// The ring never loses, duplicates or reorders descriptors, under
        /// any interleaving of pushes and pops that respects flow control.
        fn prop_fifo_no_loss(script in collection::vec(0u8..3, 1..200)) {
            let (mut front, mut back) = pair();
            let mut next_req: u64 = 0;
            let mut expect_req: u64 = 0;
            let mut next_rsp: u64 = 0;
            let mut expect_rsp: u64 = 0;
            let mut in_backend: u64 = 0;
            for op in script {
                match op {
                    0 => {
                        if front.push_request(&next_req.to_le_bytes()).is_ok() {
                            next_req += 1;
                        }
                    }
                    1 => {
                        if let Some(req) = back.take_request() {
                            assert_eq!(req, expect_req.to_le_bytes().to_vec());
                            expect_req += 1;
                            in_backend += 1;
                        }
                    }
                    _ => {
                        if in_backend > 0 {
                            back.push_response(&next_rsp.to_le_bytes()).unwrap();
                            next_rsp += 1;
                            in_backend -= 1;
                            let rsp = front.take_response().unwrap();
                            assert_eq!(rsp, expect_rsp.to_le_bytes().to_vec());
                            expect_rsp += 1;
                        }
                    }
                }
            }
        }
    }
}
