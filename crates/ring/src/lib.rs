//! Shared-memory rings — "the base abstraction for all I/O throughout
//! Mirage" (paper §3.4).
//!
//! A Xen device consists of a frontend in the guest and a backend in the
//! driver domain, "connected by an event channel to signal the other side,
//! and a single memory page divided into fixed-size request slots tracked
//! by producer/consumer pointers. Responses are written into the same slots
//! as the requests, with the frontend implementing flow control to avoid
//! overflowing the ring."
//!
//! Two ring flavours are provided:
//!
//! * [`desc::FrontRing`] / [`desc::BackRing`] — the descriptor ring used by
//!   network and block devices. Slots carry fixed-size descriptors (grant
//!   references and metadata — never payload data).
//! * [`byte::ByteRing`] — the byte-stream ring used by vchan and the
//!   console (§3.5.1).
//!
//! Both implement the Xen *event-index* notification-suppression protocol:
//! a side only needs to send an event-channel notification when its peer
//! has announced (via `req_event`/`rsp_event`) that it is waiting — "each
//! side checks for outstanding data before blocking, reducing the number of
//! hypervisor calls" (§3.5.1 footnote).

pub mod byte;
pub mod desc;

pub use byte::ByteRing;
pub use desc::{BackRing, FrontRing, RingError, SLOT_BYTES};
