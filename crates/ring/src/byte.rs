//! The byte-stream ring used by vchan (paper §3.5.1).
//!
//! "vchan is a fast shared memory interconnect through which data is
//! tracked via producer/consumer pointers. It allocates multiple contiguous
//! pages for the ring to ensure it has a reasonable buffer and once
//! connected, communicating VMs can exchange data directly via shared
//! memory without further intervention from the hypervisor other than
//! interrupt notifications." The `*_waiting` flags implement the footnoted
//! optimisation: "each side checks for outstanding data before blocking,
//! reducing the number of hypervisor calls".

use mirage_hypervisor::grant::SharedPage;

/// Header layout (little-endian): prod u32 @0, cons u32 @4,
/// reader_waiting u8 @8, writer_waiting u8 @9; data starts at 16.
const HDR: usize = 16;
const OFF_PROD: usize = 0;
const OFF_CONS: usize = 4;
const OFF_READER_WAITING: usize = 8;
const OFF_WRITER_WAITING: usize = 9;

fn get_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

fn set_u32(bytes: &mut [u8], off: usize, v: u32) {
    bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// One direction of a vchan: a circular byte buffer in shared memory.
///
/// Both endpoints hold a `ByteRing` over the same [`SharedPage`] region;
/// one calls [`ByteRing::write`], the other [`ByteRing::read`].
#[derive(Debug, Clone)]
pub struct ByteRing {
    page: SharedPage,
    capacity: u32,
}

impl ByteRing {
    /// Attaches to a shared region (the data area is everything after the
    /// 16-byte header).
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one page.
    pub fn attach(page: SharedPage) -> ByteRing {
        let len = page.len();
        assert!(len >= mirage_hypervisor::PAGE_SIZE, "ring region too small");
        ByteRing {
            page,
            capacity: (len - HDR) as u32,
        }
    }

    /// Creates a ring over `pages` fresh contiguous pages and returns both
    /// the ring and its backing region (to grant to the peer).
    pub fn allocate(pages: usize) -> (ByteRing, SharedPage) {
        let region = SharedPage::with_pages(pages);
        (ByteRing::attach(region.clone()), region)
    }

    /// Usable buffer capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bytes currently queued.
    pub fn available_data(&self) -> u32 {
        self.page.read(|b| {
            get_u32(b, OFF_PROD).wrapping_sub(get_u32(b, OFF_CONS))
        })
    }

    /// Free space in bytes.
    pub fn available_space(&self) -> u32 {
        self.capacity - self.available_data()
    }

    /// Writes as much of `data` as fits; returns `(written, notify)` where
    /// `notify` means the reader announced it was blocked and must receive
    /// an event-channel notification.
    pub fn write(&self, data: &[u8]) -> (usize, bool) {
        let cap = self.capacity;
        self.page.write(|bytes| {
            let prod = get_u32(bytes, OFF_PROD);
            let cons = get_u32(bytes, OFF_CONS);
            let free = cap - prod.wrapping_sub(cons);
            let n = data.len().min(free as usize);
            for (i, &b) in data[..n].iter().enumerate() {
                let idx = (prod.wrapping_add(i as u32) % cap) as usize;
                bytes[HDR + idx] = b;
            }
            set_u32(bytes, OFF_PROD, prod.wrapping_add(n as u32));
            let notify = n > 0 && bytes[OFF_READER_WAITING] != 0;
            if notify {
                bytes[OFF_READER_WAITING] = 0;
            }
            (n, notify)
        })
    }

    /// Reads up to `buf.len()` bytes; returns `(read, notify)` where
    /// `notify` means the writer was blocked on space.
    pub fn read(&self, buf: &mut [u8]) -> (usize, bool) {
        let cap = self.capacity;
        self.page.write(|bytes| {
            let prod = get_u32(bytes, OFF_PROD);
            let cons = get_u32(bytes, OFF_CONS);
            let avail = prod.wrapping_sub(cons);
            let n = buf.len().min(avail as usize);
            for (i, slot) in buf[..n].iter_mut().enumerate() {
                let idx = (cons.wrapping_add(i as u32) % cap) as usize;
                *slot = bytes[HDR + idx];
            }
            set_u32(bytes, OFF_CONS, cons.wrapping_add(n as u32));
            let notify = n > 0 && bytes[OFF_WRITER_WAITING] != 0;
            if notify {
                bytes[OFF_WRITER_WAITING] = 0;
            }
            (n, notify)
        })
    }

    /// The reader announces it is about to block; returns `true` if data
    /// arrived in the meantime (re-poll instead of blocking).
    pub fn reader_about_to_block(&self) -> bool {
        self.page.write(|bytes| {
            bytes[OFF_READER_WAITING] = 1;
            get_u32(bytes, OFF_PROD) != get_u32(bytes, OFF_CONS)
        })
    }

    /// The writer announces it is about to block on space; returns `true`
    /// if space appeared in the meantime.
    pub fn writer_about_to_block(&self) -> bool {
        let cap = self.capacity;
        self.page.write(|bytes| {
            bytes[OFF_WRITER_WAITING] = 1;
            cap - get_u32(bytes, OFF_PROD).wrapping_sub(get_u32(bytes, OFF_CONS)) > 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::{any, collection};

    #[test]
    fn write_then_read_round_trips() {
        let (ring, _region) = ByteRing::allocate(1);
        let (n, _) = ring.write(b"hello vchan");
        assert_eq!(n, 11);
        assert_eq!(ring.available_data(), 11);
        let mut buf = [0u8; 32];
        let (m, _) = ring.read(&mut buf);
        assert_eq!(&buf[..m], b"hello vchan");
        assert_eq!(ring.available_data(), 0);
    }

    #[test]
    fn write_is_bounded_by_capacity() {
        let (ring, _region) = ByteRing::allocate(1);
        let big = vec![7u8; 10_000];
        let (n, _) = ring.write(&big);
        assert_eq!(n as u32, ring.capacity());
        let (n2, _) = ring.write(b"more");
        assert_eq!(n2, 0, "full ring accepts nothing");
    }

    #[test]
    fn multi_page_rings_have_larger_capacity() {
        let (small, _r1) = ByteRing::allocate(1);
        let (large, _r2) = ByteRing::allocate(4);
        assert!(large.capacity() > 3 * small.capacity());
    }

    #[test]
    fn wraparound_preserves_data() {
        let (ring, _region) = ByteRing::allocate(1);
        let cap = ring.capacity() as usize;
        let chunk = cap / 3 + 1;
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for round in 0u8..10 {
            let data = vec![round; chunk];
            let (n, _) = ring.write(&data);
            expected.extend_from_slice(&data[..n]);
            let mut buf = vec![0u8; chunk];
            let (m, _) = ring.read(&mut buf);
            got.extend_from_slice(&buf[..m]);
        }
        assert_eq!(expected, got);
    }

    #[test]
    fn notifications_only_when_peer_announced_blocking() {
        let (ring, _region) = ByteRing::allocate(1);
        let (_, notify) = ring.write(b"data");
        assert!(!notify, "reader never announced blocking");
        assert!(ring.reader_about_to_block(), "data available: re-poll");
        let mut buf = [0u8; 4];
        ring.read(&mut buf);
        assert!(!ring.reader_about_to_block(), "drained: ok to block");
        let (_, notify) = ring.write(b"more");
        assert!(notify, "reader announced blocking: wake it");
    }

    #[test]
    fn writer_blocking_protocol() {
        let (ring, _region) = ByteRing::allocate(1);
        let cap = ring.capacity() as usize;
        ring.write(&vec![0u8; cap]);
        assert!(!ring.writer_about_to_block(), "no space: really block");
        let mut buf = vec![0u8; 16];
        let (_, notify_writer) = ring.read(&mut buf);
        assert!(notify_writer, "writer was waiting on space");
    }

    mirage_testkit::property! {
        /// The byte stream is exactly FIFO: reads return precisely the
        /// bytes written, in order, regardless of chunking.
        fn prop_fifo_byte_stream(chunks in collection::vec(
            collection::vec(any::<u8>(), 0..512), 1..40)
        ) {
            let (ring, _region) = ByteRing::allocate(1);
            let mut written = Vec::new();
            let mut read_back = Vec::new();
            for chunk in &chunks {
                let (n, _) = ring.write(chunk);
                written.extend_from_slice(&chunk[..n]);
                let mut buf = vec![0u8; 300];
                let (m, _) = ring.read(&mut buf);
                read_back.extend_from_slice(&buf[..m]);
            }
            // Drain.
            loop {
                let mut buf = vec![0u8; 1024];
                let (m, _) = ring.read(&mut buf);
                if m == 0 { break; }
                read_back.extend_from_slice(&buf[..m]);
            }
            assert_eq!(written, read_back);
        }
    }
}
