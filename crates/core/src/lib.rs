//! `mirage-core` — the unikernel toolchain: the paper's primary
//! contribution (paper §2, §3, §5.4).
//!
//! This crate is the part of the system a developer actually touches: it
//! turns *application + libraries + typed configuration* into a sealed,
//! single-address-space appliance.
//!
//! * [`library`] — the Table 1 catalogue with dependency edges and sizes.
//! * [`config`] — static (compile-time) vs dynamic (boot-time)
//!   configuration, with the cloneability trade-off of §2.3.1.
//! * [`dce`] — link closures and the two dead-code-elimination levels of
//!   Table 2 (module-level vs `ocamlclean` function-level).
//! * [`image`] — the linked image with compile-time address-space
//!   randomisation (§2.3.4): a fresh linker layout per deployment.
//! * [`appliance`] — the builder plus [`Appliance::into_guest`], which
//!   boots the image as a hypervisor guest: charge start-of-day work, map
//!   the Figure 2 layout, seal, run `main`.
//! * [`inventory`] — the Figure 14a active-LoC accounting.
//!
//! # Example
//!
//! ```
//! use mirage_core::{Appliance, Library};
//!
//! let dns = Appliance::builder("dns")
//!     .library(Library::APP_DNS)
//!     .library(Library::NET_DHCP)
//!     .static_config("zone", "example.org")
//!     .dynamic_config("ip")
//!     .build()?;
//! assert!(dns.image().size_bytes() < 1 << 20, "orders smaller than a VM");
//! assert!(!dns.link_set().contains(Library::NET_TCP), "unused ⇒ elided");
//! # Ok::<(), mirage_core::BuildError>(())
//! ```

pub mod appliance;
pub mod config;
pub mod dce;
pub mod image;
pub mod inventory;
pub mod library;

pub use appliance::{Appliance, ApplianceBuilder, BuildError, SealMode};
pub use config::{Binding, Config, ConfigEntry};
pub use dce::{DceLevel, LinkSet};
pub use image::{Image, Section};
pub use inventory::ApplianceKind;
pub use library::{Library, LibraryInfo, Subsystem, CATALOG};

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 reproduction at the unit level: all four benchmark
    /// appliances are sub-megabyte and shrink under function-level DCE.
    #[test]
    fn table2_appliances_are_compact() {
        let builds: [(&str, Vec<Library>); 4] = [
            ("dns", vec![Library::APP_DNS, Library::NET_DHCP]),
            (
                "web-server",
                vec![Library::APP_HTTP, Library::STORE_BTREE, Library::FMT_JSON],
            ),
            ("of-switch", vec![Library::NET_OPENFLOW]),
            ("of-controller", vec![Library::NET_OPENFLOW]),
        ];
        for (name, roots) in builds {
            let mut standard = Appliance::builder(name).dce(DceLevel::Standard);
            let mut cleaned = Appliance::builder(name).dce(DceLevel::FunctionLevel);
            for r in &roots {
                standard = standard.library(*r);
                cleaned = cleaned.library(*r);
            }
            let standard = standard.build().unwrap();
            let cleaned = cleaned.build().unwrap();
            assert!(
                standard.image().size_bytes() < 1_000_000,
                "{name} standard: {}",
                standard.image().size_bytes()
            );
            assert!(
                cleaned.image().size_bytes() * 2 < standard.image().size_bytes() + 120_000,
                "{name}: elimination roughly halves or better"
            );
        }
    }
}
