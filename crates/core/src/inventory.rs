//! The active lines-of-code inventory (paper §4.5, Figure 14a).
//!
//! "We attempt to control for these effects by configuring according to
//! reasonable defaults, and then pre-processing to remove unused macros,
//! comments and whitespace. … Even after removing irrelevant code, a Linux
//! appliance involves at least 4–5x more LoC than a Mirage appliance."
//!
//! The Linux-side figures below are reconstructions of the pruned counts
//! behind Figure 14a (kernel subset actually exercised by a single-service
//! appliance, the libc subset it links, and the pre-processed server
//! code). They are estimates calibrated to the published 4–5× ratio, and
//! the benchmark reports them as such.

use crate::dce::LinkSet;
use crate::library::Library;

/// The appliances Figure 14a compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplianceKind {
    /// Authoritative DNS (BIND / NSD vs Mirage DNS).
    Dns,
    /// Static web serving (Apache / nginx vs Mirage HTTP).
    StaticWeb,
    /// Dynamic web + database (nginx + web.py vs Mirage HTTP + B-tree).
    DynamicWeb,
    /// OpenFlow controller (NOX vs Mirage OpenFlow).
    OpenFlowController,
    /// OpenFlow switch.
    OpenFlowSwitch,
}

impl ApplianceKind {
    /// All kinds, figure order.
    pub fn all() -> [ApplianceKind; 5] {
        [
            ApplianceKind::Dns,
            ApplianceKind::StaticWeb,
            ApplianceKind::DynamicWeb,
            ApplianceKind::OpenFlowController,
            ApplianceKind::OpenFlowSwitch,
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ApplianceKind::Dns => "DNS",
            ApplianceKind::StaticWeb => "static-web",
            ApplianceKind::DynamicWeb => "dynamic-web",
            ApplianceKind::OpenFlowController => "of-controller",
            ApplianceKind::OpenFlowSwitch => "of-switch",
        }
    }

    /// The Mirage library roots for this appliance.
    pub fn mirage_roots(&self) -> Vec<Library> {
        match self {
            ApplianceKind::Dns => vec![Library::APP_DNS, Library::NET_DHCP],
            ApplianceKind::StaticWeb => vec![Library::APP_HTTP, Library::STORE_KV],
            ApplianceKind::DynamicWeb => {
                vec![Library::APP_HTTP, Library::STORE_BTREE, Library::FMT_JSON]
            }
            ApplianceKind::OpenFlowController => vec![Library::NET_OPENFLOW],
            ApplianceKind::OpenFlowSwitch => vec![Library::NET_OPENFLOW],
        }
    }
}

/// One LoC line item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocEntry {
    /// Component name.
    pub component: &'static str,
    /// Active pre-processed lines.
    pub loc: u64,
}

/// The pruned Linux-appliance inventory for a kind (estimates; see module
/// docs).
pub fn linux_appliance(kind: ApplianceKind) -> Vec<LocEntry> {
    // Shared base: the kernel subset one network appliance exercises
    // (boot, mm, sched, net core, one NIC driver, block core) plus the
    // libc subset actually linked after pre-processing.
    let mut items = vec![
        LocEntry {
            component: "linux-kernel-subset",
            loc: 78_000,
        },
        LocEntry {
            component: "glibc-subset",
            loc: 21_000,
        },
        LocEntry {
            component: "init+udev+shell glue",
            loc: 9_500,
        },
    ];
    items.extend(match kind {
        ApplianceKind::Dns => vec![LocEntry {
            component: "bind9 (pruned)",
            loc: 62_000,
        }],
        ApplianceKind::StaticWeb => vec![
            LocEntry {
                component: "apache2-mpm (pruned)",
                loc: 58_000,
            },
            LocEntry {
                component: "openssl-linked-subset",
                loc: 18_000,
            },
        ],
        ApplianceKind::DynamicWeb => vec![
            LocEntry {
                component: "nginx (pruned)",
                loc: 38_000,
            },
            LocEntry {
                component: "python+web.py runtime subset",
                loc: 84_000,
            },
            LocEntry {
                component: "sqlite (pruned)",
                loc: 46_000,
            },
        ],
        ApplianceKind::OpenFlowController => vec![LocEntry {
            component: "nox destiny-fast (pruned)",
            loc: 52_000,
        }],
        ApplianceKind::OpenFlowSwitch => vec![LocEntry {
            component: "openvswitch (pruned)",
            loc: 47_000,
        }],
    });
    items
}

/// Total pruned Linux LoC for a kind.
pub fn linux_total(kind: ApplianceKind) -> u64 {
    linux_appliance(kind).iter().map(|e| e.loc).sum()
}

/// Mirage LoC for a kind (computed from the real link closure).
pub fn mirage_total(kind: ApplianceKind) -> u64 {
    LinkSet::close(&kind.mirage_roots()).total_loc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_is_4_to_8x_larger_for_every_appliance() {
        // The paper's §4.5 claim, preserved across the whole figure.
        for kind in ApplianceKind::all() {
            let linux = linux_total(kind) as f64;
            let mirage = mirage_total(kind) as f64;
            let ratio = linux / mirage;
            assert!(
                (4.0..9.0).contains(&ratio),
                "{}: ratio {ratio:.1} (linux {linux}, mirage {mirage})",
                kind.label()
            );
        }
    }

    #[test]
    fn mirage_totals_come_from_the_link_closure() {
        // DNS closure excludes TCP; the controller includes it.
        assert!(mirage_total(ApplianceKind::Dns) < mirage_total(ApplianceKind::OpenFlowController) + 20_000);
        assert!(mirage_total(ApplianceKind::Dns) > 15_000, "base runtime counted");
    }

    #[test]
    fn inventories_are_itemised() {
        let items = linux_appliance(ApplianceKind::DynamicWeb);
        assert!(items.len() >= 4, "kernel + libc + glue + app stack");
        assert!(items.iter().any(|e| e.component.contains("kernel")));
    }
}
