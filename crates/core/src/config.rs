//! Configuration as code (paper §2.1, §2.3.1).
//!
//! "Unikernels … treat \[services\] as libraries within a single
//! application, allowing the application developer to configure them using
//! either simple library calls for dynamic parameters, or build system
//! tools for static parameters."
//!
//! [`Binding::Static`] values are compiled into the image: they enable
//! extra dead-code elimination and change the image identity (so two
//! differently-configured appliances are different binaries — "the
//! trade-off … is that VMs can no longer be cloned by taking a
//! copy-on-write snapshot", §2.3.1). [`Binding::Dynamic`] values are
//! resolved at boot (e.g. DHCP instead of a static IP), keeping the image
//! cloneable at a small boot-time cost.

use std::collections::BTreeMap;

/// How a configuration value binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Binding {
    /// Compiled in at build time.
    Static,
    /// Resolved at boot.
    Dynamic,
}

/// One configuration entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEntry {
    /// Binding mode.
    pub binding: Binding,
    /// Value (empty for dynamic keys until boot).
    pub value: String,
}

/// The appliance configuration set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    entries: BTreeMap<String, ConfigEntry>,
}

impl Config {
    /// An empty configuration.
    pub fn new() -> Config {
        Config::default()
    }

    /// Sets a static (compile-time) key.
    pub fn set_static(&mut self, key: &str, value: &str) {
        self.entries.insert(
            key.to_owned(),
            ConfigEntry {
                binding: Binding::Static,
                value: value.to_owned(),
            },
        );
    }

    /// Declares a dynamic (boot-time) key.
    pub fn set_dynamic(&mut self, key: &str) {
        self.entries.insert(
            key.to_owned(),
            ConfigEntry {
                binding: Binding::Dynamic,
                value: String::new(),
            },
        );
    }

    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&ConfigEntry> {
        self.entries.get(key)
    }

    /// Whether any key is dynamic (the image then stays cloneable).
    pub fn is_cloneable(&self) -> bool {
        // An image is clone-safe when nothing instance-specific is baked
        // in: all instance identity must come from dynamic keys.
        !self
            .entries
            .values()
            .any(|e| e.binding == Binding::Static)
            || self.entries.is_empty()
    }

    /// Bytes the configuration adds to the image (static values are
    /// compiled in; dynamic keys only add a small resolver stub).
    pub fn image_bytes(&self) -> u32 {
        self.entries
            .values()
            .map(|e| match e.binding {
                Binding::Static => 32 + e.value.len() as u32,
                Binding::Dynamic => 96, // resolver stub (e.g. DHCP client hook)
            })
            .sum()
    }

    /// A stable content hash — static keys change it, dynamic keys do not
    /// (two instances differing only in dynamic values share an image).
    pub fn identity_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for (k, e) in &self.entries {
            if e.binding == Binding::Static {
                for b in k.bytes().chain(e.value.bytes()) {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
            } else {
                for b in k.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
            }
        }
        h
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfigEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the configuration is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_keys_break_cloneability() {
        let mut cfg = Config::new();
        assert!(cfg.is_cloneable());
        cfg.set_dynamic("ip");
        assert!(cfg.is_cloneable(), "dynamic-only stays cloneable");
        cfg.set_static("zone", "example.org");
        assert!(!cfg.is_cloneable(), "a baked-in value pins the instance");
    }

    #[test]
    fn identity_tracks_static_values_only() {
        let mut a = Config::new();
        a.set_static("zone", "example.org");
        a.set_dynamic("ip");
        let mut b = Config::new();
        b.set_static("zone", "example.org");
        b.set_dynamic("ip");
        assert_eq!(a.identity_hash(), b.identity_hash());

        let mut c = Config::new();
        c.set_static("zone", "example.com");
        c.set_dynamic("ip");
        assert_ne!(a.identity_hash(), c.identity_hash(), "static value differs");
    }

    #[test]
    fn image_bytes_reflect_bindings() {
        let mut cfg = Config::new();
        cfg.set_static("motd", "hello");
        let static_only = cfg.image_bytes();
        assert_eq!(static_only, 32 + 5);
        cfg.set_dynamic("ip");
        assert_eq!(cfg.image_bytes(), static_only + 96);
    }

    #[test]
    fn entries_are_retrievable() {
        let mut cfg = Config::new();
        cfg.set_static("a", "1");
        cfg.set_dynamic("b");
        assert_eq!(cfg.get("a").unwrap().binding, Binding::Static);
        assert_eq!(cfg.get("b").unwrap().binding, Binding::Dynamic);
        assert!(cfg.get("c").is_none());
        assert_eq!(cfg.len(), 2);
    }
}
