//! Dead-code elimination (paper §2.2, §4.5, Table 2).
//!
//! Two levels, exactly as the paper evaluates:
//!
//! * [`DceLevel::Standard`] — "the default OCaml dead-code elimination
//!   which drops unused modules": the link closure over explicitly
//!   referenced libraries; everything reachable is kept whole.
//! * [`DceLevel::FunctionLevel`] — "`ocamlclean`, a more extensive custom
//!   tool which performs dataflow analysis to drop unused functions within
//!   a module if not otherwise referenced; this is safe due to the lack of
//!   dynamic linking in Mirage": retained libraries shrink to their
//!   per-library retention fraction.

use std::collections::BTreeSet;

use crate::library::{Library, LibraryInfo};

/// Elimination level (the two columns of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DceLevel {
    /// Module-level: unreferenced libraries are dropped entirely.
    Standard,
    /// Function-level (`ocamlclean`): retained libraries also shrink.
    FunctionLevel,
}

/// The result of a link + eliminate pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSet {
    retained: Vec<&'static LibraryInfo>,
}

impl LinkSet {
    /// Computes the dependency closure of `roots` (plus the always-linked
    /// base runtime).
    pub fn close(roots: &[Library]) -> LinkSet {
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        let mut stack: Vec<Library> = vec![Library::RUNTIME, Library::PVBOOT];
        stack.extend(roots.iter().copied());
        while let Some(lib) = stack.pop() {
            if !seen.insert(lib.name()) {
                continue;
            }
            for dep in lib.info().deps {
                stack.push(Library::by_name(dep).expect("catalogue closed"));
            }
        }
        let retained = crate::library::CATALOG
            .iter()
            .filter(|l| seen.contains(l.name))
            .collect();
        LinkSet { retained }
    }

    /// Libraries in the closure (catalogue order).
    pub fn libraries(&self) -> impl Iterator<Item = Library> + '_ {
        self.retained.iter().map(|l| Library(l))
    }

    /// Whether `lib` survived the link.
    pub fn contains(&self, lib: Library) -> bool {
        self.retained.iter().any(|l| l.name == lib.name())
    }

    /// Number of retained libraries.
    pub fn len(&self) -> usize {
        self.retained.len()
    }

    /// Whether the set is empty (never true in practice: the runtime is
    /// always linked).
    pub fn is_empty(&self) -> bool {
        self.retained.is_empty()
    }

    /// Total object bytes at an elimination level.
    pub fn object_bytes(&self, level: DceLevel) -> u64 {
        self.retained
            .iter()
            .map(|l| match level {
                DceLevel::Standard => l.object_bytes as u64,
                DceLevel::FunctionLevel => {
                    (l.object_bytes as u64 * l.dce_retention_pct as u64) / 100
                }
            })
            .sum()
    }

    /// Total source lines of the retained set (Figure 14 inventory).
    pub fn total_loc(&self) -> u64 {
        self.retained.iter().map(|l| l.loc as u64).sum()
    }

    /// The soundness audit of §2.3.1: "the module dependency graph can be
    /// easily statically verified to only contain the desired services".
    /// Returns libraries in the set that are *not* reachable from the
    /// roots (must be empty) — and the closure property is checked by
    /// construction in tests.
    pub fn unreachable_from(&self, roots: &[Library]) -> Vec<Library> {
        let closure = LinkSet::close(roots);
        self.libraries()
            .filter(|l| !closure.contains(*l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::{collection};

    #[test]
    fn closure_includes_roots_deps_and_base() {
        let set = LinkSet::close(&[Library::APP_DNS]);
        for lib in [
            Library::APP_DNS,
            Library::NET_UDP,
            Library::NET_IPV4,
            Library::NET_ARP,
            Library::NET_ETHERNET,
            Library::STORE_KV,
            Library::RUNTIME,
            Library::PVBOOT,
        ] {
            assert!(set.contains(lib), "missing {lib}");
        }
    }

    #[test]
    fn unused_services_are_elided() {
        // "if no filesystem is used, then the entire set of block drivers
        // are automatically elided" (§4.5).
        let set = LinkSet::close(&[Library::APP_DNS]);
        assert!(!set.contains(Library::STORE_FAT32));
        assert!(!set.contains(Library::NET_TCP), "DNS/UDP appliance has no TCP");
        assert!(!set.contains(Library::APP_SSH));
    }

    #[test]
    fn function_level_always_smaller_than_standard() {
        for roots in [
            vec![Library::APP_DNS],
            vec![Library::APP_HTTP, Library::STORE_BTREE],
            vec![Library::NET_OPENFLOW],
        ] {
            let set = LinkSet::close(&roots);
            assert!(
                set.object_bytes(DceLevel::FunctionLevel) < set.object_bytes(DceLevel::Standard),
                "ocamlclean shrinks {roots:?}"
            );
        }
    }

    #[test]
    fn table2_ballpark_for_the_dns_appliance() {
        // Paper Table 2: DNS 0.449 MB standard, 0.184 MB after elimination.
        let set = LinkSet::close(&[
            Library::APP_DNS,
            Library::NET_DHCP,
            Library::NET_ICMP,
        ]);
        let standard = set.object_bytes(DceLevel::Standard);
        let cleaned = set.object_bytes(DceLevel::FunctionLevel);
        assert!(
            (250_000..650_000).contains(&standard),
            "standard build in the hundreds of kB: {standard}"
        );
        assert!(
            (100_000..300_000).contains(&cleaned),
            "cleaned build well under standard: {cleaned}"
        );
        assert!(cleaned * 2 < standard + 100_000, "roughly the paper's ratio");
    }

    #[test]
    fn audit_finds_no_strays_in_own_closure() {
        let roots = [Library::APP_HTTP];
        let set = LinkSet::close(&roots);
        assert!(set.unreachable_from(&roots).is_empty());
    }

    mirage_testkit::property! {
        /// Closure soundness: the retained set is closed under deps, and
        /// minimal (every member reachable from the roots + base).
        fn prop_closure_sound_and_minimal(idx in collection::vec(0usize..crate::library::CATALOG.len(), 1..5)) {
            let roots: Vec<Library> = idx
                .iter()
                .map(|i| Library(&crate::library::CATALOG[*i]))
                .collect();
            let set = LinkSet::close(&roots);
            // Closed: every dep of every member is a member.
            for lib in set.libraries() {
                for dep in lib.info().deps {
                    assert!(set.contains(Library::by_name(dep).unwrap()),
                        "{} missing dep {dep}", lib.name());
                }
            }
            // Minimal: auditing against its own roots finds nothing.
            assert!(set.unreachable_from(&roots).is_empty());
            // Monotone: adding a root never shrinks the closure.
            let mut bigger_roots = roots.clone();
            bigger_roots.push(Library::APP_SSH);
            let bigger = LinkSet::close(&bigger_roots);
            for lib in set.libraries() {
                assert!(bigger.contains(lib));
            }
        }
    }
}
