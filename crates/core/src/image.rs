//! The compiled unikernel image and compile-time address-space
//! randomisation (paper §2.3.4, Table 2).
//!
//! "The unikernel model means that reconfiguring an appliance means
//! recompiling it, potentially for every deployment. We can thus perform
//! address space randomisation at compile time using a freshly generated
//! linker script, without impeding any compiler optimisations and without
//! adding any runtime complexity."

use mirage_testkit::rng::Rng;

use crate::config::Config;
use crate::dce::{DceLevel, LinkSet};
use crate::library::Library;

/// One section in the linked image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Owning library.
    pub library: &'static str,
    /// Link address (offset from the text base).
    pub address: u64,
    /// Section size in bytes.
    pub bytes: u64,
}

/// A fully linked unikernel image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    name: String,
    sections: Vec<Section>,
    size_bytes: u64,
    loc: u64,
    level: DceLevel,
    layout_seed: u64,
    cloneable: bool,
}

/// Alignment of every section (16 bytes, as a linker would).
const SECTION_ALIGN: u64 = 16;
/// Maximum random inter-section gap inserted by CT-ASR.
const MAX_GAP: u64 = 4096;

impl Image {
    /// Links `set` at `level` with configuration `cfg`, randomising the
    /// section layout from `layout_seed` (a fresh seed per deployment —
    /// "potentially for every deployment").
    pub fn link(
        name: &str,
        set: &LinkSet,
        level: DceLevel,
        cfg: &Config,
        layout_seed: u64,
    ) -> Image {
        let mut rng = Rng::new(layout_seed ^ cfg.identity_hash());
        let mut libs: Vec<Library> = set.libraries().collect();
        // CT-ASR: shuffle section order...
        rng.shuffle(&mut libs);
        let mut sections = Vec::with_capacity(libs.len());
        let mut cursor = 0u64;
        for lib in &libs {
            // ...and insert random guard gaps between sections.
            let gap = rng.gen_range(0..MAX_GAP);
            cursor += gap;
            cursor = cursor.div_ceil(SECTION_ALIGN) * SECTION_ALIGN;
            let bytes = match level {
                DceLevel::Standard => lib.info().object_bytes as u64,
                DceLevel::FunctionLevel => {
                    (lib.info().object_bytes as u64 * lib.info().dce_retention_pct as u64) / 100
                }
            };
            sections.push(Section {
                library: lib.name(),
                address: cursor,
                bytes,
            });
            cursor += bytes;
        }
        let size_bytes = set.object_bytes(level) + cfg.image_bytes() as u64;
        Image {
            name: name.to_owned(),
            sections,
            size_bytes,
            loc: set.total_loc(),
            level,
            layout_seed,
            cloneable: cfg.is_cloneable(),
        }
    }

    /// Appliance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Image size in bytes (drives Table 2 and the Figure 5 boot model).
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Active source lines linked in (Figure 14).
    pub fn total_loc(&self) -> u64 {
        self.loc
    }

    /// Elimination level this image was linked at.
    pub fn dce_level(&self) -> DceLevel {
        self.level
    }

    /// Whether instances of this image may be cloned (no static
    /// instance-identity baked in, §2.3.1).
    pub fn is_cloneable(&self) -> bool {
        self.cloneable
    }

    /// The randomised section layout.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Seed the layout was generated from.
    pub fn layout_seed(&self) -> u64 {
        self.layout_seed
    }

    /// Layout validity: sections are aligned, non-overlapping and sorted.
    pub fn layout_is_valid(&self) -> bool {
        let mut sorted = self.sections.clone();
        sorted.sort_by_key(|s| s.address);
        sorted.iter().all(|s| s.address % SECTION_ALIGN == 0)
            && sorted
                .windows(2)
                .all(|w| w[0].address + w[0].bytes <= w[1].address)
    }

    /// The address of a library's section, if linked (what a ROP attacker
    /// would need to know — and what CT-ASR randomises per deployment).
    pub fn section_address(&self, library: &str) -> Option<u64> {
        self.sections
            .iter()
            .find(|s| s.library == library)
            .map(|s| s.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;

    fn dns_image(seed: u64, level: DceLevel) -> Image {
        let set = LinkSet::close(&[Library::APP_DNS]);
        let mut cfg = Config::new();
        cfg.set_static("zone", "example.org");
        Image::link("dns", &set, level, &cfg, seed)
    }

    #[test]
    fn layouts_are_valid_for_many_seeds() {
        for seed in 0..50 {
            let img = dns_image(seed, DceLevel::FunctionLevel);
            assert!(img.layout_is_valid(), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_randomise_section_addresses() {
        let a = dns_image(1, DceLevel::FunctionLevel);
        let b = dns_image(2, DceLevel::FunctionLevel);
        // The attacker-relevant property: some library lands elsewhere.
        let moved = a
            .sections()
            .iter()
            .filter(|s| b.section_address(s.library) != Some(s.address))
            .count();
        assert!(
            moved > a.sections().len() / 2,
            "most sections moved: {moved}/{}",
            a.sections().len()
        );
        // Size is unaffected by layout.
        assert_eq!(a.size_bytes(), b.size_bytes());
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = dns_image(7, DceLevel::Standard);
        let b = dns_image(7, DceLevel::Standard);
        assert_eq!(a, b, "builds are deterministic given the seed");
    }

    #[test]
    fn function_level_images_are_smaller() {
        let std_img = dns_image(1, DceLevel::Standard);
        let fn_img = dns_image(1, DceLevel::FunctionLevel);
        assert!(fn_img.size_bytes() < std_img.size_bytes());
        assert!(
            fn_img.size_bytes() < 1 << 20,
            "unikernels are sub-megabyte (Table 2): {}",
            fn_img.size_bytes()
        );
    }

    #[test]
    fn config_contributes_to_size_and_cloneability() {
        let set = LinkSet::close(&[Library::APP_DNS]);
        let empty = Image::link("d", &set, DceLevel::Standard, &Config::new(), 0);
        let mut cfg = Config::new();
        cfg.set_dynamic("ip");
        let dynamic = Image::link("d", &set, DceLevel::Standard, &cfg, 0);
        assert!(dynamic.size_bytes() > empty.size_bytes());
        assert!(dynamic.is_cloneable());
        cfg.set_static("ip-static", "10.0.0.1");
        let pinned = Image::link("d", &set, DceLevel::Standard, &cfg, 0);
        assert!(!pinned.is_cloneable());
    }
}
