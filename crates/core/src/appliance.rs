//! The appliance builder — the Mirage compiler front-end (paper §2, §5.4).
//!
//! "Rather than treating the database, web server, etc., as independent
//! applications which must be connected together by configuration files,
//! unikernels treat them as libraries within a single application." An
//! [`Appliance`] is exactly that: a set of library roots, a typed
//! configuration, a DCE level and a layout seed, compiled into an
//! [`Image`] and bootable as a sealed single-address-space guest.

use mirage_hypervisor::{CostTable, DomainEnv, Dur};
use mirage_pvboot::layout::MemoryLayout;
use mirage_runtime::channel::JoinHandle;
use mirage_runtime::{Runtime, UnikernelGuest};

use crate::config::Config;
use crate::dce::{DceLevel, LinkSet};
use crate::image::Image;
use crate::library::Library;

/// Whether the guest issues the `seal` hypercall at start of day
/// (§2.3.3 — optional: "Mirage can run on unmodified versions of Xen
/// without this patch, albeit losing this layer of the defence-in-depth").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealMode {
    /// Seal after establishing W^X page tables.
    Sealed,
    /// Run on an unmodified hypervisor.
    Unsealed,
}

/// Errors from appliance construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No library roots were supplied.
    NoRoots,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoRoots => f.write_str("an appliance needs at least one library root"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Appliance`].
#[derive(Debug)]
pub struct ApplianceBuilder {
    name: String,
    roots: Vec<Library>,
    config: Config,
    dce: DceLevel,
    seal: SealMode,
    layout_seed: u64,
}

impl ApplianceBuilder {
    /// Adds a library root (its dependency closure is linked).
    pub fn library(mut self, lib: Library) -> ApplianceBuilder {
        self.roots.push(lib);
        self
    }

    /// Bakes a static configuration value into the image.
    pub fn static_config(mut self, key: &str, value: &str) -> ApplianceBuilder {
        self.config.set_static(key, value);
        self
    }

    /// Declares a boot-time configuration key (e.g. `ip` via DHCP).
    pub fn dynamic_config(mut self, key: &str) -> ApplianceBuilder {
        self.config.set_dynamic(key);
        self
    }

    /// Selects the elimination level (default: function-level).
    pub fn dce(mut self, level: DceLevel) -> ApplianceBuilder {
        self.dce = level;
        self
    }

    /// Selects the sealing mode (default: sealed).
    pub fn seal(mut self, mode: SealMode) -> ApplianceBuilder {
        self.seal = mode;
        self
    }

    /// Sets the CT-ASR layout seed ("potentially for every deployment").
    pub fn layout_seed(mut self, seed: u64) -> ApplianceBuilder {
        self.layout_seed = seed;
        self
    }

    /// Compiles the appliance.
    ///
    /// # Errors
    ///
    /// [`BuildError::NoRoots`] for an empty appliance.
    pub fn build(self) -> Result<Appliance, BuildError> {
        if self.roots.is_empty() {
            return Err(BuildError::NoRoots);
        }
        let set = LinkSet::close(&self.roots);
        let image = Image::link(&self.name, &set, self.dce, &self.config, self.layout_seed);
        Ok(Appliance {
            name: self.name,
            roots: self.roots,
            link_set: set,
            image,
            config: self.config,
            seal: self.seal,
        })
    }
}

/// A compiled unikernel appliance.
#[derive(Debug)]
pub struct Appliance {
    name: String,
    roots: Vec<Library>,
    link_set: LinkSet,
    image: Image,
    config: Config,
    seal: SealMode,
}

impl Appliance {
    /// Starts a builder.
    pub fn builder(name: &str) -> ApplianceBuilder {
        ApplianceBuilder {
            name: name.to_owned(),
            roots: Vec::new(),
            config: Config::new(),
            dce: DceLevel::FunctionLevel,
            seal: SealMode::Sealed,
            layout_seed: 0x4D49_5241_4745, // deterministic default
        }
    }

    /// Appliance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The linked library set.
    pub fn link_set(&self) -> &LinkSet {
        &self.link_set
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The library roots the developer asked for.
    pub fn roots(&self) -> &[Library] {
        &self.roots
    }

    /// Sealing mode.
    pub fn seal_mode(&self) -> SealMode {
        self.seal
    }

    /// Start-of-day CPU cost: image placement plus runtime initialisation
    /// ("the unikernel transmits the UDP packet as soon as the network
    /// interface is ready" — this is everything before that point except
    /// the device handshake itself).
    pub fn boot_cost(&self, costs: &CostTable) -> Dur {
        // Zero + relocate the image, then one runtime-init pass over it.
        let image_cost = costs.copy(self.image.size_bytes() as usize) * 2;
        let fixed = Dur::millis(2); // GC heap + scheduler bring-up
        image_cost + fixed
    }

    /// Wraps the appliance into a bootable guest: the boot closure charges
    /// [`Appliance::boot_cost`], installs the Figure 2 memory layout,
    /// optionally seals, records the `unikernel-booted` observation, and
    /// only then runs `main`.
    pub fn into_guest<F, Fut, T>(self, mem_mib: u64, main: F) -> UnikernelGuest
    where
        F: FnOnce(&mut DomainEnv<'_>, &Runtime) -> Fut + Send + 'static,
        Fut: mirage_runtime::IntoMainHandle<T>,
        T: Send + 'static,
    {
        self.into_guest_with_runtime(Runtime::new(), mem_mib, main)
    }

    /// Same, over a caller-supplied runtime.
    pub fn into_guest_with_runtime<F, Fut, T>(
        self,
        rt: Runtime,
        mem_mib: u64,
        main: F,
    ) -> UnikernelGuest
    where
        F: FnOnce(&mut DomainEnv<'_>, &Runtime) -> Fut + Send + 'static,
        Fut: mirage_runtime::IntoMainHandle<T>,
        T: Send + 'static,
    {
        let image_kib = (self.image.size_bytes() / 1024).max(1);
        let seal = self.seal;
        let boot_cost_of = move |costs: &CostTable| {
            let image_cost = costs.copy((image_kib * 1024) as usize) * 2;
            image_cost + Dur::millis(2)
        };
        UnikernelGuest::with_runtime(rt, move |env, rt| {
            let cost = boot_cost_of(env.costs());
            env.consume(cost);
            // Figure 2 layout: text = image, data = image/4, 64 I/O pages.
            let layout =
                MemoryLayout::standard(image_kib, (image_kib / 4).max(1), mem_mib, 64);
            layout
                .apply(env, seal == SealMode::Sealed)
                .expect("canonical layout maps and seals");
            env.observe("unikernel-booted");
            main(env, rt)
        })
    }
}

/// Blanket re-export so builders read naturally.
pub type MainHandle = JoinHandle<i64>;

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_hypervisor::memory::MemError;
    use mirage_hypervisor::Hypervisor;

    fn dns_appliance() -> Appliance {
        Appliance::builder("dns")
            .library(Library::APP_DNS)
            .library(Library::NET_DHCP)
            .static_config("zone", "example.org")
            .dynamic_config("ip")
            .build()
            .expect("valid appliance")
    }

    #[test]
    fn builder_produces_a_compact_image() {
        let app = dns_appliance();
        assert!(app.image().size_bytes() < 1 << 20, "sub-MB (Table 2)");
        assert!(app.link_set().contains(Library::NET_UDP));
        assert!(!app.link_set().contains(Library::NET_TCP));
        assert_eq!(app.seal_mode(), SealMode::Sealed);
    }

    #[test]
    fn empty_appliance_rejected() {
        assert_eq!(
            Appliance::builder("nothing").build().err(),
            Some(BuildError::NoRoots)
        );
    }

    #[test]
    fn guest_boots_seals_and_runs_main() {
        let app = dns_appliance();
        let guest = app.into_guest(32, |env, rt| {
            assert!(env.is_sealed(), "sealed before main runs");
            rt.spawn(async { 0i64 })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("dns", 32, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
        assert!(hv.observation(dom, "unikernel-booted").is_some());
        assert!(hv.address_space(dom).is_sealed());
        assert!(hv.address_space(dom).satisfies_wx());
    }

    #[test]
    fn sealed_guest_rejects_code_injection_at_runtime() {
        let app = dns_appliance();
        let guest = app.into_guest(32, |env, rt| {
            // The attack of §2.3.3: try to make a data page executable.
            let data_page = mirage_pvboot::layout::GUEST_BASE + 0x10_0000;
            let result = env.mmu_protect(data_page, true, true);
            assert!(
                matches!(result, Err(MemError::Sealed) | Err(MemError::NotMapped)),
                "page tables are frozen: {result:?}"
            );
            rt.spawn(async { 0i64 })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("dns", 32, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
    }

    #[test]
    fn unsealed_mode_skips_the_hypercall() {
        let app = Appliance::builder("dns")
            .library(Library::APP_DNS)
            .seal(SealMode::Unsealed)
            .build()
            .unwrap();
        let guest = app.into_guest(32, |env, rt| {
            assert!(!env.is_sealed());
            rt.spawn(async { 0i64 })
        });
        let mut hv = Hypervisor::new();
        let dom = hv.create_domain("dns", 32, Box::new(guest));
        hv.run();
        assert_eq!(hv.exit_code(dom), Some(0));
        assert!(!hv.address_space(dom).is_sealed());
    }

    #[test]
    fn boot_cost_scales_with_image_size() {
        let small = Appliance::builder("dns")
            .library(Library::APP_DNS)
            .build()
            .unwrap();
        let large = Appliance::builder("everything")
            .library(Library::APP_DNS)
            .library(Library::APP_HTTP)
            .library(Library::APP_SSH)
            .library(Library::APP_XMPP)
            .library(Library::NET_OPENFLOW)
            .library(Library::STORE_FAT32)
            .dce(DceLevel::Standard)
            .build()
            .unwrap();
        let costs = CostTable::defaults();
        assert!(large.boot_cost(&costs) > small.boot_cost(&costs));
        assert!(
            small.boot_cost(&costs) < Dur::millis(50),
            "unikernel boots fast (Figure 6)"
        );
    }
}
