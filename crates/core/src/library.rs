//! The Mirage library catalogue (paper Table 1).
//!
//! "All network services are available as libraries, so only modules
//! explicitly referenced in configuration files are linked in the output.
//! The module dependency graph can be easily statically verified to only
//! contain the desired services" (§2.3.1). This module is that catalogue:
//! every system facility of Table 1, with its dependency edges, source
//! size and compiled object size. The appliance builder computes link
//! closures over it and the dead-code eliminator shrinks them.
//!
//! Source/object sizes are calibrated against the paper's published
//! appliance sizes (Table 2: e.g. the DNS appliance is 449 kB before and
//! 184 kB after function-level elimination) and LoC figures (§4.5).

use std::fmt;

/// Table 1 subsystem groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    /// Lwt, Cstruct, Regexp, UTF8, Cryptokit + the runtime itself.
    Core,
    /// Ethernet … TCP, OpenFlow.
    Network,
    /// Key-value, FAT-32, append B-tree, Memcache.
    Storage,
    /// DNS, SSH, HTTP, XMPP, SMTP.
    Application,
    /// JSON, XML, CSS, S-expressions.
    Formats,
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Subsystem::Core => "Core",
            Subsystem::Network => "Network",
            Subsystem::Storage => "Storage",
            Subsystem::Application => "Application",
            Subsystem::Formats => "Formats",
        };
        f.write_str(s)
    }
}

/// Metadata for one linkable library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibraryInfo {
    /// Unique name.
    pub name: &'static str,
    /// Table 1 subsystem.
    pub subsystem: Subsystem,
    /// Source lines (drives the Figure 14 inventory and boot work).
    pub loc: u32,
    /// Compiled object size in bytes (standard module-level linking).
    pub object_bytes: u32,
    /// Fraction of the object a *typical single appliance* actually
    /// reaches — what function-level elimination (`ocamlclean`) retains.
    pub dce_retention_pct: u32,
    /// Hard dependencies (always linked alongside).
    pub deps: &'static [&'static str],
}

/// A handle into the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Library(pub(crate) &'static LibraryInfo);

impl Library {
    /// Library name.
    pub fn name(&self) -> &'static str {
        self.0.name
    }

    /// Catalogue metadata.
    pub fn info(&self) -> &'static LibraryInfo {
        self.0
    }

    /// Looks a library up by name.
    pub fn by_name(name: &str) -> Option<Library> {
        CATALOG.iter().find(|l| l.name == name).map(Library)
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0.name)
    }
}

macro_rules! lib_consts {
    ($( $const_name:ident = $name:literal ),+ $(,)?) => {
        impl Library {
            $(
                #[doc = concat!("The `", $name, "` library.")]
                pub const $const_name: Library = Library(
                    match find_in_catalog($name) {
                        Some(info) => info,
                        None => panic!("library missing from catalogue"),
                    },
                );
            )+
        }
    };
}

const fn find_in_catalog(name: &str) -> Option<&'static LibraryInfo> {
    let mut i = 0;
    while i < CATALOG.len() {
        if const_str_eq(CATALOG[i].name, name) {
            return Some(&CATALOG[i]);
        }
        i += 1;
    }
    None
}

const fn const_str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

/// The full Table 1 catalogue plus the base runtime pieces.
pub const CATALOG: &[LibraryInfo] = &[
    // --- base (always linked) ---------------------------------------------
    LibraryInfo { name: "runtime", subsystem: Subsystem::Core, loc: 9_200, object_bytes: 135_000, dce_retention_pct: 55, deps: &["pvboot"] },
    LibraryInfo { name: "pvboot", subsystem: Subsystem::Core, loc: 1_900, object_bytes: 28_000, dce_retention_pct: 80, deps: &[] },
    // --- core libraries ----------------------------------------------------
    LibraryInfo { name: "lwt", subsystem: Subsystem::Core, loc: 4_800, object_bytes: 52_000, dce_retention_pct: 45, deps: &["runtime"] },
    LibraryInfo { name: "cstruct", subsystem: Subsystem::Core, loc: 1_400, object_bytes: 16_000, dce_retention_pct: 60, deps: &["runtime"] },
    LibraryInfo { name: "regexp", subsystem: Subsystem::Core, loc: 2_300, object_bytes: 26_000, dce_retention_pct: 30, deps: &["runtime"] },
    LibraryInfo { name: "utf8", subsystem: Subsystem::Core, loc: 900, object_bytes: 10_000, dce_retention_pct: 40, deps: &["runtime"] },
    LibraryInfo { name: "cryptokit", subsystem: Subsystem::Core, loc: 5_600, object_bytes: 64_000, dce_retention_pct: 25, deps: &["runtime"] },
    // --- network -----------------------------------------------------------
    LibraryInfo { name: "ethernet", subsystem: Subsystem::Network, loc: 700, object_bytes: 9_000, dce_retention_pct: 70, deps: &["cstruct", "lwt"] },
    LibraryInfo { name: "arp", subsystem: Subsystem::Network, loc: 600, object_bytes: 8_000, dce_retention_pct: 70, deps: &["ethernet"] },
    LibraryInfo { name: "dhcp", subsystem: Subsystem::Network, loc: 1_100, object_bytes: 14_000, dce_retention_pct: 55, deps: &["udp"] },
    LibraryInfo { name: "ipv4", subsystem: Subsystem::Network, loc: 1_300, object_bytes: 17_000, dce_retention_pct: 65, deps: &["arp"] },
    LibraryInfo { name: "icmp", subsystem: Subsystem::Network, loc: 400, object_bytes: 6_000, dce_retention_pct: 70, deps: &["ipv4"] },
    LibraryInfo { name: "udp", subsystem: Subsystem::Network, loc: 600, object_bytes: 8_000, dce_retention_pct: 70, deps: &["ipv4"] },
    LibraryInfo { name: "tcp", subsystem: Subsystem::Network, loc: 5_200, object_bytes: 62_000, dce_retention_pct: 55, deps: &["ipv4"] },
    LibraryInfo { name: "openflow", subsystem: Subsystem::Network, loc: 3_400, object_bytes: 41_000, dce_retention_pct: 45, deps: &["tcp"] },
    // --- storage -----------------------------------------------------------
    LibraryInfo { name: "kv", subsystem: Subsystem::Storage, loc: 800, object_bytes: 10_000, dce_retention_pct: 60, deps: &["lwt"] },
    LibraryInfo { name: "fat32", subsystem: Subsystem::Storage, loc: 2_600, object_bytes: 31_000, dce_retention_pct: 40, deps: &["cstruct", "lwt"] },
    LibraryInfo { name: "btree", subsystem: Subsystem::Storage, loc: 2_100, object_bytes: 26_000, dce_retention_pct: 45, deps: &["cstruct", "lwt"] },
    LibraryInfo { name: "memcache", subsystem: Subsystem::Storage, loc: 1_200, object_bytes: 15_000, dce_retention_pct: 40, deps: &["tcp", "kv"] },
    // --- application -------------------------------------------------------
    LibraryInfo { name: "dns", subsystem: Subsystem::Application, loc: 2_500, object_bytes: 30_000, dce_retention_pct: 50, deps: &["udp", "kv", "regexp"] },
    LibraryInfo { name: "ssh", subsystem: Subsystem::Application, loc: 4_900, object_bytes: 58_000, dce_retention_pct: 35, deps: &["tcp", "cryptokit"] },
    LibraryInfo { name: "http", subsystem: Subsystem::Application, loc: 3_100, object_bytes: 37_000, dce_retention_pct: 45, deps: &["tcp", "regexp", "utf8"] },
    LibraryInfo { name: "xmpp", subsystem: Subsystem::Application, loc: 3_800, object_bytes: 45_000, dce_retention_pct: 30, deps: &["tcp", "xml"] },
    LibraryInfo { name: "smtp", subsystem: Subsystem::Application, loc: 2_200, object_bytes: 26_000, dce_retention_pct: 35, deps: &["tcp", "regexp"] },
    // --- formats -----------------------------------------------------------
    LibraryInfo { name: "json", subsystem: Subsystem::Formats, loc: 1_500, object_bytes: 18_000, dce_retention_pct: 40, deps: &["utf8"] },
    LibraryInfo { name: "xml", subsystem: Subsystem::Formats, loc: 2_400, object_bytes: 28_000, dce_retention_pct: 35, deps: &["utf8"] },
    LibraryInfo { name: "css", subsystem: Subsystem::Formats, loc: 1_100, object_bytes: 13_000, dce_retention_pct: 30, deps: &["utf8"] },
    LibraryInfo { name: "sexp", subsystem: Subsystem::Formats, loc: 900, object_bytes: 11_000, dce_retention_pct: 40, deps: &["utf8"] },
];

lib_consts! {
    RUNTIME = "runtime",
    PVBOOT = "pvboot",
    CORE_LWT = "lwt",
    CORE_CSTRUCT = "cstruct",
    CORE_REGEXP = "regexp",
    CORE_UTF8 = "utf8",
    CORE_CRYPTOKIT = "cryptokit",
    NET_ETHERNET = "ethernet",
    NET_ARP = "arp",
    NET_DHCP = "dhcp",
    NET_IPV4 = "ipv4",
    NET_ICMP = "icmp",
    NET_UDP = "udp",
    NET_TCP = "tcp",
    NET_OPENFLOW = "openflow",
    STORE_KV = "kv",
    STORE_FAT32 = "fat32",
    STORE_BTREE = "btree",
    STORE_MEMCACHE = "memcache",
    APP_DNS = "dns",
    APP_SSH = "ssh",
    APP_HTTP = "http",
    APP_XMPP = "xmpp",
    APP_SMTP = "smtp",
    FMT_JSON = "json",
    FMT_XML = "xml",
    FMT_CSS = "css",
    FMT_SEXP = "sexp",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique() {
        let mut names: Vec<_> = CATALOG.iter().map(|l| l.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_dependency_exists() {
        for lib in CATALOG {
            for dep in lib.deps {
                assert!(
                    Library::by_name(dep).is_some(),
                    "{} depends on missing {dep}",
                    lib.name
                );
            }
        }
    }

    #[test]
    fn table1_subsystems_are_all_populated() {
        for subsystem in [
            Subsystem::Core,
            Subsystem::Network,
            Subsystem::Storage,
            Subsystem::Application,
            Subsystem::Formats,
        ] {
            assert!(
                CATALOG.iter().any(|l| l.subsystem == subsystem),
                "no libraries in {subsystem}"
            );
        }
    }

    #[test]
    fn consts_resolve_to_catalogue_entries() {
        assert_eq!(Library::APP_DNS.name(), "dns");
        assert_eq!(Library::NET_TCP.info().subsystem, Subsystem::Network);
        assert_eq!(Library::by_name("tcp"), Some(Library::NET_TCP));
        assert_eq!(Library::by_name("nonexistent"), None);
    }

    #[test]
    fn dependency_graph_is_acyclic() {
        fn visit(name: &str, stack: &mut Vec<&'static str>) {
            let lib = Library::by_name(name).expect("exists");
            assert!(
                !stack.contains(&lib.name()),
                "cycle through {name}: {stack:?}"
            );
            stack.push(lib.name());
            for dep in lib.info().deps {
                visit(dep, stack);
            }
            stack.pop();
        }
        for lib in CATALOG {
            visit(lib.name, &mut Vec::new());
        }
    }
}
