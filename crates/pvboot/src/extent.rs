//! The extent allocator (paper §3.2).
//!
//! "The extent allocator reserves a contiguous area of virtual memory which
//! it manipulates in 2 MB chunks, permitting the mapping of x86_64
//! superpages." The major OCaml heap grows through this allocator, which is
//! why a Mirage unikernel can guarantee a contiguous heap and skip the page
//! table bookkeeping a userspace GC needs (§3.3).

use std::fmt;

use mirage_testkit::rng::Rng;

/// Size of one extent chunk: a 2 MiB x86-64 superpage.
pub const CHUNK_SIZE: u64 = 2 * 1024 * 1024;

/// An allocation handle: a contiguous run of chunks inside the reserved
/// region, expressed as byte offsets from the region base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// Byte offset of the first chunk from the region base.
    pub offset: u64,
    /// Length in bytes (a multiple of [`CHUNK_SIZE`]).
    pub len: u64,
}

impl Extent {
    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether two extents share any byte.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }
}

/// Errors from the extent allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtentError {
    /// Not enough contiguous chunks remain.
    OutOfMemory,
    /// A zero-chunk request.
    ZeroSized,
    /// Freeing a range that is not an allocated extent.
    BadFree,
}

impl fmt::Display for ExtentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ExtentError::OutOfMemory => "no contiguous run of free chunks is large enough",
            ExtentError::ZeroSized => "zero-sized extent requested",
            ExtentError::BadFree => "range is not an allocated extent",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ExtentError {}

/// First-fit allocator over a contiguous reserved region, in 2 MiB chunks,
/// with coalescing on free.
///
/// # Example
///
/// ```
/// use mirage_pvboot::extent::{ExtentAllocator, CHUNK_SIZE};
///
/// let mut alloc = ExtentAllocator::new(8 * CHUNK_SIZE);
/// let a = alloc.alloc(2)?;
/// let b = alloc.alloc(1)?;
/// assert!(!a.overlaps(&b));
/// alloc.free(a)?;
/// assert_eq!(alloc.free_bytes(), 7 * CHUNK_SIZE);
/// # Ok::<(), mirage_pvboot::extent::ExtentError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    region_len: u64,
    /// Sorted, coalesced list of free runs.
    free: Vec<Extent>,
    /// Outstanding allocations (for free() validation).
    allocated: Vec<Extent>,
    total_allocs: u64,
    /// Seeded placement randomizer for the address-space-randomization
    /// model; `None` keeps deterministic first fit.
    layout_rng: Option<Rng>,
}

impl ExtentAllocator {
    /// Reserves a region of `region_len` bytes (rounded down to whole
    /// chunks).
    pub fn new(region_len: u64) -> ExtentAllocator {
        let region_len = region_len - region_len % CHUNK_SIZE;
        let free = if region_len == 0 {
            Vec::new()
        } else {
            vec![Extent {
                offset: 0,
                len: region_len,
            }]
        };
        ExtentAllocator {
            region_len,
            free,
            allocated: Vec::new(),
            total_allocs: 0,
            layout_rng: None,
        }
    }

    /// A randomized-placement allocator: the §2.3 address-space-
    /// randomization model applied to the heap. Every allocation is placed
    /// at a seeded-random chunk-aligned position among all candidate
    /// positions, so extent addresses vary per deployment seed while the
    /// allocator invariants (disjointness, coalescing, accounting) are
    /// untouched. Same seed ⇒ identical placement sequence.
    pub fn new_randomized(region_len: u64, seed: u64) -> ExtentAllocator {
        let mut a = ExtentAllocator::new(region_len);
        a.layout_rng = Some(Rng::for_stream(seed, "extent-aslr"));
        a
    }

    /// Allocates `chunks` contiguous 2 MiB chunks — first fit, or a seeded
    /// random placement for allocators built with
    /// [`ExtentAllocator::new_randomized`].
    ///
    /// # Errors
    ///
    /// [`ExtentError::ZeroSized`] for zero requests, otherwise
    /// [`ExtentError::OutOfMemory`] when no free run is long enough.
    pub fn alloc(&mut self, chunks: u64) -> Result<Extent, ExtentError> {
        if chunks == 0 {
            return Err(ExtentError::ZeroSized);
        }
        let want = chunks * CHUNK_SIZE;
        let (idx, offset) = match self.layout_rng.take() {
            Some(mut rng) => {
                let picked = self.pick_randomized(want, &mut rng);
                self.layout_rng = Some(rng);
                picked.ok_or(ExtentError::OutOfMemory)?
            }
            None => {
                let idx = self
                    .free
                    .iter()
                    .position(|run| run.len >= want)
                    .ok_or(ExtentError::OutOfMemory)?;
                (idx, self.free[idx].offset)
            }
        };
        let run = self.free[idx];
        let ext = Extent { offset, len: want };
        // Carve the extent out of the run, keeping the free list sorted:
        // up to two remainders survive, one on each side.
        self.free.remove(idx);
        let mut insert_at = idx;
        if offset > run.offset {
            self.free.insert(
                insert_at,
                Extent {
                    offset: run.offset,
                    len: offset - run.offset,
                },
            );
            insert_at += 1;
        }
        if ext.end() < run.end() {
            self.free.insert(
                insert_at,
                Extent {
                    offset: ext.end(),
                    len: run.end() - ext.end(),
                },
            );
        }
        self.allocated.push(ext);
        self.total_allocs += 1;
        Ok(ext)
    }

    /// Picks a uniformly random chunk-aligned placement among every
    /// position in every free run that can hold `want` bytes.
    fn pick_randomized(&self, want: u64, rng: &mut Rng) -> Option<(usize, u64)> {
        let positions: Vec<u64> = self
            .free
            .iter()
            .map(|run| {
                if run.len >= want {
                    (run.len - want) / CHUNK_SIZE + 1
                } else {
                    0
                }
            })
            .collect();
        let total: u64 = positions.iter().sum();
        if total == 0 {
            return None;
        }
        let mut pick = rng.gen_range(0..total);
        for (idx, &n) in positions.iter().enumerate() {
            if pick < n {
                return Some((idx, self.free[idx].offset + pick * CHUNK_SIZE));
            }
            pick -= n;
        }
        unreachable!("pick < total")
    }

    /// Returns an extent to the free list, coalescing with neighbours.
    ///
    /// # Errors
    ///
    /// [`ExtentError::BadFree`] if `ext` was not returned by
    /// [`ExtentAllocator::alloc`] (or was already freed).
    pub fn free(&mut self, ext: Extent) -> Result<(), ExtentError> {
        let idx = self
            .allocated
            .iter()
            .position(|a| *a == ext)
            .ok_or(ExtentError::BadFree)?;
        self.allocated.swap_remove(idx);
        // Insert sorted and coalesce.
        let pos = self
            .free
            .iter()
            .position(|run| run.offset > ext.offset)
            .unwrap_or(self.free.len());
        self.free.insert(pos, ext);
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.free.len() {
            if self.free[i].end() == self.free[i + 1].offset {
                self.free[i].len += self.free[i + 1].len;
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|r| r.len).sum()
    }

    /// Total bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated.iter().map(|r| r.len).sum()
    }

    /// Size of the reserved region.
    pub fn region_len(&self) -> u64 {
        self.region_len
    }

    /// Length of the largest free run (fragmentation metric).
    pub fn largest_free_run(&self) -> u64 {
        self.free.iter().map(|r| r.len).max().unwrap_or(0)
    }

    /// Lifetime allocation count.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Outstanding allocations (audit).
    pub fn allocations(&self) -> &[Extent] {
        &self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::{any, collection};

    #[test]
    fn alloc_free_round_trip() {
        let mut a = ExtentAllocator::new(4 * CHUNK_SIZE);
        let e = a.alloc(4).unwrap();
        assert_eq!(e.len, 4 * CHUNK_SIZE);
        assert_eq!(a.free_bytes(), 0);
        assert_eq!(a.alloc(1), Err(ExtentError::OutOfMemory));
        a.free(e).unwrap();
        assert_eq!(a.free_bytes(), 4 * CHUNK_SIZE);
    }

    #[test]
    fn coalescing_rebuilds_large_runs() {
        let mut a = ExtentAllocator::new(4 * CHUNK_SIZE);
        let e1 = a.alloc(1).unwrap();
        let e2 = a.alloc(1).unwrap();
        let e3 = a.alloc(1).unwrap();
        a.free(e2).unwrap();
        // Fragmented: cannot satisfy a 2-chunk request from the middle hole
        // plus tail without coalescing with the tail run... the tail run is
        // 1 chunk and the hole is 1 chunk, non-adjacent.
        assert_eq!(a.largest_free_run(), CHUNK_SIZE);
        a.free(e1).unwrap();
        assert_eq!(a.largest_free_run(), 2 * CHUNK_SIZE, "e1+e2 coalesced");
        a.free(e3).unwrap();
        assert_eq!(a.largest_free_run(), 4 * CHUNK_SIZE, "fully coalesced");
    }

    #[test]
    fn double_free_rejected() {
        let mut a = ExtentAllocator::new(2 * CHUNK_SIZE);
        let e = a.alloc(1).unwrap();
        a.free(e).unwrap();
        assert_eq!(a.free(e), Err(ExtentError::BadFree));
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut a = ExtentAllocator::new(CHUNK_SIZE);
        assert_eq!(a.alloc(0), Err(ExtentError::ZeroSized));
    }

    #[test]
    fn region_rounds_down_to_chunks() {
        let a = ExtentAllocator::new(3 * CHUNK_SIZE + 12345);
        assert_eq!(a.region_len(), 3 * CHUNK_SIZE);
    }

    #[test]
    fn randomized_placement_is_seed_deterministic_and_varies() {
        let place = |seed: u64| {
            let mut a = ExtentAllocator::new_randomized(64 * CHUNK_SIZE, seed);
            (0..4).map(|_| a.alloc(2).unwrap().offset).collect::<Vec<_>>()
        };
        assert_eq!(place(7), place(7), "same seed, same layout");
        let first_offsets: std::collections::HashSet<u64> =
            (0..8).map(|s| place(s)[0]).collect();
        assert!(
            first_offsets.len() >= 4,
            "placement varies across seeds: {first_offsets:?}"
        );
    }

    #[test]
    fn randomized_allocator_keeps_invariants() {
        let mut a = ExtentAllocator::new_randomized(32 * CHUNK_SIZE, 1337);
        let mut live = Vec::new();
        for i in 0..24 {
            if i % 3 == 2 && !live.is_empty() {
                let e = live.remove(i % live.len());
                a.free(e).unwrap();
            } else if let Ok(e) = a.alloc(1 + (i as u64 % 3)) {
                for other in &live {
                    assert!(!e.overlaps(other));
                }
                assert_eq!(e.offset % CHUNK_SIZE, 0, "chunk aligned");
                live.push(e);
            }
            assert_eq!(a.free_bytes() + a.allocated_bytes(), a.region_len());
        }
        for e in live {
            a.free(e).unwrap();
        }
        assert_eq!(a.largest_free_run(), a.region_len(), "fully coalesced");
    }

    mirage_testkit::property! {
        /// No two live allocations ever overlap, and accounting balances.
        fn prop_allocations_disjoint(ops in collection::vec((any::<bool>(), 1u64..5), 1..64)) {
            let mut a = ExtentAllocator::new(32 * CHUNK_SIZE);
            let mut live: Vec<Extent> = Vec::new();
            for (is_alloc, n) in ops {
                if is_alloc || live.is_empty() {
                    if let Ok(e) = a.alloc(n) {
                        live.push(e);
                    }
                } else {
                    let e = live.remove((n as usize) % live.len());
                    a.free(e).unwrap();
                }
                for (i, x) in live.iter().enumerate() {
                    for y in &live[i + 1..] {
                        assert!(!x.overlaps(y));
                    }
                }
                assert_eq!(a.free_bytes() + a.allocated_bytes(), a.region_len());
            }
        }

        /// Freeing everything always restores one maximal run.
        fn prop_full_free_fully_coalesces(sizes in collection::vec(1u64..4, 1..16)) {
            let mut a = ExtentAllocator::new(64 * CHUNK_SIZE);
            let mut live = Vec::new();
            for n in sizes {
                if let Ok(e) = a.alloc(n) { live.push(e); }
            }
            for e in live {
                a.free(e).unwrap();
            }
            assert_eq!(a.largest_free_run(), a.region_len());
        }
    }
}
