//! A cost model of the modified OCaml garbage collector (paper §3.3).
//!
//! "The OCaml garbage collector splits the heap into two regions: a fast
//! minor heap for short-lived values, and a large major heap to which
//! longer-lived values are promoted on each minor heap collection."
//!
//! The figure-7 experiment compares four targets running identical heap
//! workloads: `mirage (extent)`, `mirage (malloc)`, `linux-native` and
//! `linux-pv`. The differences are purely in how heap *growth* is priced:
//!
//! * **Extent** backing maps one 2 MiB superpage per chunk — one page-table
//!   update — and needs no chunk-tracking table because the heap is
//!   guaranteed contiguous.
//! * **Malloc** backing maps 512 individual 4 KiB pages per chunk and must
//!   maintain a chunk page table that every minor collection re-scans
//!   ("a normal userspace garbage collector maintains a page table to
//!   track allocated heap chunks").
//! * Hosted targets additionally pay a syscall per growth (`brk`/`mmap`)
//!   and a soft page fault per fresh page; the paravirtualised target pays
//!   page-table propagation to the hypervisor on top.
//!
//! [`GcHeap`] exposes those costs as [`Dur`] values that the runtime
//! charges to virtual time.

use mirage_hypervisor::{costs::CostTable, Dur};

use crate::extent::CHUNK_SIZE;

/// Which allocator backs the major heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapBacking {
    /// PVBoot extent allocator: 2 MiB superpages, contiguous, no chunk
    /// table (the `xen-extent` target).
    Extent,
    /// A C `malloc`-style allocator: 4 KiB mappings plus a chunk-tracking
    /// page table (the `xen-malloc` target).
    Malloc,
}

/// Per-environment overheads added to every heap growth operation.
///
/// These are what distinguish the `linux-native` and `linux-pv` rows of
/// Figure 7 from the unikernel rows running the identical workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnvOverheads {
    /// Trap cost per growth operation (`mmap`/`brk`).
    pub grow_syscall: Dur,
    /// Soft-fault cost per fresh 4 KiB page touched.
    pub page_fault_per_page: Dur,
    /// Extra per-page cost to propagate PTE updates through the hypervisor
    /// (paravirtualised guests only).
    pub pte_propagate_per_page: Dur,
}

impl EnvOverheads {
    /// A unikernel pays none of these.
    pub fn unikernel() -> EnvOverheads {
        EnvOverheads::default()
    }

    /// A native Linux process: syscalls plus demand-paging faults.
    pub fn linux_native(costs: &CostTable) -> EnvOverheads {
        EnvOverheads {
            grow_syscall: costs.syscall,
            page_fault_per_page: Dur::nanos(costs.syscall.as_nanos() / 2),
            pte_propagate_per_page: Dur::ZERO,
        }
    }

    /// A paravirtualised Linux process: native costs plus hypervisor PTE
    /// propagation.
    pub fn linux_pv(costs: &CostTable) -> EnvOverheads {
        let mut o = Self::linux_native(costs);
        o.pte_propagate_per_page = costs.pte_update;
        o
    }
}

/// Counters exposed for the experiment harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Minor collections run.
    pub minor_collections: u64,
    /// Heap growth operations.
    pub grows: u64,
    /// 2 MiB chunks currently backing the major heap.
    pub major_chunks: u64,
    /// Total virtual time spent in allocation + collection.
    pub gc_time: Dur,
}

/// Average boxed-object size assumed by the model (a closure + a timer
/// record per lightweight thread lands around here).
pub const OBJ_BYTES: u64 = 48;

/// The two-generation GC heap cost model.
#[derive(Debug, Clone)]
pub struct GcHeap {
    backing: HeapBacking,
    overheads: EnvOverheads,
    minor_capacity: u64,
    minor_used: u64,
    minor_survivors: u64,
    major_used: u64,
    major_capacity: u64,
    region_limit: u64,
    stats: GcStats,
}

impl GcHeap {
    /// A heap with the standard 2 MiB minor generation and a major region
    /// limited to `region_limit` bytes.
    pub fn new(backing: HeapBacking, overheads: EnvOverheads, region_limit: u64) -> GcHeap {
        GcHeap {
            backing,
            overheads,
            minor_capacity: crate::layout::MINOR_HEAP_BYTES,
            minor_used: 0,
            minor_survivors: 0,
            major_used: 0,
            major_capacity: 0,
            region_limit,
            stats: GcStats::default(),
        }
    }

    /// Allocates `bytes` on the minor heap; `long_lived` values survive the
    /// next minor collection and are promoted.
    ///
    /// Returns the virtual-time cost of the allocation including any
    /// collection it triggered.
    pub fn alloc(&mut self, bytes: u64, long_lived: bool, costs: &CostTable) -> Dur {
        let mut cost = costs.gc_alloc;
        self.stats.allocs += 1;
        self.minor_used += bytes;
        if long_lived {
            self.minor_survivors += bytes;
        }
        if self.minor_used >= self.minor_capacity {
            cost += self.minor_collection(costs);
        }
        self.stats.gc_time += cost;
        cost
    }

    /// Runs a minor collection: scans survivors, promotes them to the
    /// major heap, grows the major heap if needed.
    pub fn minor_collection(&mut self, costs: &CostTable) -> Dur {
        self.stats.minor_collections += 1;
        let survivor_objs = self.minor_survivors / OBJ_BYTES;
        let mut cost = costs.gc_scan_per_obj * survivor_objs + costs.copy(self.minor_survivors as usize);
        if self.backing == HeapBacking::Malloc {
            // The userspace GC re-walks its chunk page table every cycle.
            cost += costs.gc_scan_per_obj * (self.stats.major_chunks * 8);
        }
        self.major_used += self.minor_survivors;
        self.minor_survivors = 0;
        self.minor_used = 0;
        if self.major_used > self.major_capacity {
            cost += self.grow_major(costs);
        }
        cost
    }

    fn grow_major(&mut self, costs: &CostTable) -> Dur {
        let deficit = self.major_used - self.major_capacity;
        let chunks = deficit.div_ceil(CHUNK_SIZE);
        let new_capacity = (self.major_capacity + chunks * CHUNK_SIZE).min(self.region_limit);
        let grown = new_capacity.saturating_sub(self.major_capacity);
        let chunks = grown / CHUNK_SIZE;
        if chunks == 0 {
            // Region exhausted: model a full major collection instead.
            let live_objs = self.major_used / OBJ_BYTES;
            return costs.gc_scan_per_obj * live_objs * 2;
        }
        self.stats.grows += 1;
        self.stats.major_chunks += chunks;
        self.major_capacity = new_capacity;

        let pages_per_chunk = CHUNK_SIZE / crate::layout::PAGE_SIZE_BYTES as u64;
        let mut cost = self.overheads.grow_syscall;
        cost += match self.backing {
            // One superpage mapping per chunk.
            HeapBacking::Extent => costs.pte_update * chunks,
            // 512 x 4 KiB mappings per chunk plus allocator bookkeeping.
            HeapBacking::Malloc => {
                costs.pte_update * (chunks * pages_per_chunk) + costs.malloc * chunks
            }
        };
        let pages = chunks * pages_per_chunk;
        cost += self.overheads.page_fault_per_page * pages;
        cost += self.overheads.pte_propagate_per_page * pages;
        cost
    }

    /// Releases `bytes` of long-lived data (e.g. completed threads).
    pub fn release(&mut self, bytes: u64) {
        self.major_used = self.major_used.saturating_sub(bytes);
    }

    /// Counters.
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Bytes currently promoted to the major heap.
    pub fn major_used(&self) -> u64 {
        self.major_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostTable {
        CostTable::defaults()
    }

    fn churn(heap: &mut GcHeap, objs: u64, long_lived: bool) -> Dur {
        let costs = costs();
        let mut total = Dur::ZERO;
        for _ in 0..objs {
            total += heap.alloc(OBJ_BYTES, long_lived, &costs);
        }
        total
    }

    const REGION: u64 = 1 << 32; // 4 GiB

    #[test]
    fn short_lived_allocation_is_nearly_free() {
        let mut heap = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), REGION);
        let temp = churn(&mut heap, 200_000, false);
        let mut heap2 = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), REGION);
        let live = churn(&mut heap2, 200_000, true);
        assert!(
            temp < live,
            "promoting survivors costs more than discarding garbage"
        );
        assert_eq!(heap.major_used(), 0);
        assert!(heap2.major_used() > 0);
    }

    #[test]
    fn extent_backing_beats_malloc_backing() {
        // The Figure-7a ablation: same workload, different backing.
        let objs = 2_000_000;
        let mut extent = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), REGION);
        let mut malloc = GcHeap::new(HeapBacking::Malloc, EnvOverheads::unikernel(), REGION);
        let t_extent = churn(&mut extent, objs, true);
        let t_malloc = churn(&mut malloc, objs, true);
        assert!(
            t_extent < t_malloc,
            "superpage extents avoid per-4KiB PTE work: {t_extent} vs {t_malloc}"
        );
    }

    #[test]
    fn hosted_targets_pay_more_than_unikernel() {
        let objs = 2_000_000;
        let c = costs();
        let mut xen = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), REGION);
        let mut native = GcHeap::new(HeapBacking::Malloc, EnvOverheads::linux_native(&c), REGION);
        let mut pv = GcHeap::new(HeapBacking::Malloc, EnvOverheads::linux_pv(&c), REGION);
        let t_xen = churn(&mut xen, objs, true);
        let t_native = churn(&mut native, objs, true);
        let t_pv = churn(&mut pv, objs, true);
        assert!(t_xen < t_native, "unikernel < linux-native");
        assert!(t_native < t_pv, "linux-native < linux-pv (Figure 7a order)");
    }

    #[test]
    fn minor_collections_trigger_at_capacity() {
        let mut heap = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), REGION);
        let per_minor = crate::layout::MINOR_HEAP_BYTES / OBJ_BYTES;
        churn(&mut heap, per_minor + 1, false);
        assert_eq!(heap.stats().minor_collections, 1);
    }

    #[test]
    fn region_exhaustion_degrades_to_major_collection_not_panic() {
        let tiny = 4 * CHUNK_SIZE;
        let mut heap = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), tiny);
        churn(&mut heap, 1_000_000, true);
        assert!(heap.stats().major_chunks <= 4);
    }

    #[test]
    fn release_shrinks_major_usage() {
        let mut heap = GcHeap::new(HeapBacking::Extent, EnvOverheads::unikernel(), REGION);
        churn(&mut heap, 100_000, true);
        let used = heap.major_used();
        heap.release(used / 2);
        assert_eq!(heap.major_used(), used - used / 2);
    }
}
