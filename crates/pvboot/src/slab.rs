//! The slab allocator (paper §3.2).
//!
//! "The slab allocator is used to support the C code in the runtime; as
//! most code is in OCaml it is not heavily used." It hands out fixed-size
//! objects from power-of-two size classes, each class carved out of whole
//! pages.

use std::fmt;

/// Size classes served by the slab (bytes). Requests round up to the next
/// class; larger requests are refused (the extent allocator handles those).
pub const SIZE_CLASSES: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];

/// An allocation handle: (size class index, slot number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabObject {
    class: usize,
    slot: usize,
}

impl SlabObject {
    /// The object's size class in bytes.
    pub fn size(&self) -> usize {
        SIZE_CLASSES[self.class]
    }
}

/// Errors from the slab allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabError {
    /// Request exceeds the largest size class.
    TooLarge,
    /// The backing page budget is exhausted.
    OutOfPages,
    /// Freeing a slot that is not live.
    BadFree,
}

impl fmt::Display for SlabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SlabError::TooLarge => "request exceeds the largest slab class",
            SlabError::OutOfPages => "slab page budget exhausted",
            SlabError::BadFree => "slot is not a live slab object",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SlabError {}

#[derive(Debug, Default, Clone)]
struct SizeClass {
    /// Slot occupancy; index = slot number.
    slots: Vec<bool>,
    free_list: Vec<usize>,
    pages: usize,
}

/// A slab allocator over a bounded page budget.
#[derive(Debug, Clone)]
pub struct SlabAllocator {
    classes: Vec<SizeClass>,
    page_budget: usize,
    pages_used: usize,
    live: usize,
}

impl SlabAllocator {
    /// A slab allowed to consume at most `page_budget` 4 KiB pages.
    pub fn new(page_budget: usize) -> SlabAllocator {
        SlabAllocator {
            classes: vec![SizeClass::default(); SIZE_CLASSES.len()],
            page_budget,
            pages_used: 0,
            live: 0,
        }
    }

    fn class_for(size: usize) -> Option<usize> {
        SIZE_CLASSES.iter().position(|c| *c >= size)
    }

    /// Allocates an object of at least `size` bytes.
    ///
    /// # Errors
    ///
    /// [`SlabError::TooLarge`] beyond the top class, [`SlabError::OutOfPages`]
    /// when a new slab page is needed but the budget is spent.
    pub fn alloc(&mut self, size: usize) -> Result<SlabObject, SlabError> {
        let class = Self::class_for(size).ok_or(SlabError::TooLarge)?;
        let entry = &mut self.classes[class];
        let slot = if let Some(slot) = entry.free_list.pop() {
            slot
        } else {
            // Grow the class by one page of slots.
            if self.pages_used >= self.page_budget {
                return Err(SlabError::OutOfPages);
            }
            self.pages_used += 1;
            entry.pages += 1;
            let per_page = crate::layout::PAGE_SIZE_BYTES / SIZE_CLASSES[class];
            let base = entry.slots.len();
            entry.slots.resize(base + per_page, false);
            entry.free_list.extend((base + 1..base + per_page).rev());
            base
        };
        self.classes[class].slots[slot] = true;
        self.live += 1;
        Ok(SlabObject { class, slot })
    }

    /// Frees a previously allocated object.
    ///
    /// # Errors
    ///
    /// [`SlabError::BadFree`] on double free or a fabricated handle.
    pub fn free(&mut self, obj: SlabObject) -> Result<(), SlabError> {
        let entry = self
            .classes
            .get_mut(obj.class)
            .ok_or(SlabError::BadFree)?;
        match entry.slots.get_mut(obj.slot) {
            Some(s) if *s => {
                *s = false;
                entry.free_list.push(obj.slot);
                self.live -= 1;
                Ok(())
            }
            _ => Err(SlabError::BadFree),
        }
    }

    /// Live object count.
    pub fn live_objects(&self) -> usize {
        self.live
    }

    /// Pages consumed so far.
    pub fn pages_used(&self) -> usize {
        self.pages_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_testkit::prop::{any, collection};

    #[test]
    fn sizes_round_up_to_classes() {
        let mut slab = SlabAllocator::new(16);
        assert_eq!(slab.alloc(1).unwrap().size(), 16);
        assert_eq!(slab.alloc(33).unwrap().size(), 64);
        assert_eq!(slab.alloc(2048).unwrap().size(), 2048);
        assert_eq!(slab.alloc(2049), Err(SlabError::TooLarge));
    }

    #[test]
    fn slots_are_reused_after_free() {
        let mut slab = SlabAllocator::new(1);
        let a = slab.alloc(64).unwrap();
        slab.free(a).unwrap();
        let b = slab.alloc(64).unwrap();
        assert_eq!(a, b, "LIFO reuse of the freed slot");
    }

    #[test]
    fn page_budget_enforced() {
        let mut slab = SlabAllocator::new(1);
        let per_page = crate::layout::PAGE_SIZE_BYTES / 2048;
        for _ in 0..per_page {
            slab.alloc(2048).unwrap();
        }
        assert_eq!(slab.alloc(2048), Err(SlabError::OutOfPages));
        // A different class also needs a fresh page: refused too.
        assert_eq!(slab.alloc(16), Err(SlabError::OutOfPages));
    }

    #[test]
    fn double_free_detected() {
        let mut slab = SlabAllocator::new(4);
        let a = slab.alloc(32).unwrap();
        slab.free(a).unwrap();
        assert_eq!(slab.free(a), Err(SlabError::BadFree));
    }

    mirage_testkit::property! {
        /// Live count equals allocs minus frees; every alloc within one
        /// class returns a distinct slot while live.
        fn prop_slab_accounting(ops in collection::vec((any::<bool>(), 1usize..2048), 1..128)) {
            let mut slab = SlabAllocator::new(64);
            let mut live = Vec::new();
            for (is_alloc, size) in ops {
                if is_alloc || live.is_empty() {
                    if let Ok(obj) = slab.alloc(size) {
                        assert!(!live.contains(&obj), "slot handed out twice");
                        live.push(obj);
                    }
                } else {
                    let obj = live.remove(size % live.len());
                    slab.free(obj).unwrap();
                }
                assert_eq!(slab.live_objects(), live.len());
            }
        }
    }
}
