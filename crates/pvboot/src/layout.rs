//! The specialised 64-bit virtual memory layout of a Mirage unikernel
//! (paper Figure 2) and its installation/sealing sequence.
//!
//! From low to high addresses: program text, a guard page, static data, a
//! guard page, the 2 MiB minor heap (grown in 4 KiB chunks), the major heap
//! (grown in 2 MiB superpage extents), and a reserved external-I/O region.
//! The layout is contiguous and known at link time — "Mirage unikernels
//! avoid ASR at runtime in favour of a more specialised security model, and
//! guarantee a contiguous virtual address space, simplifying runtime memory
//! management" (§3.3).

use mirage_hypervisor::memory::{Mapping, MemError, Region};
use mirage_hypervisor::DomainEnv;

/// 4 KiB.
pub const PAGE_SIZE_BYTES: usize = mirage_hypervisor::PAGE_SIZE;

/// Base of the virtual address space available to the guest (above the
/// area reserved by Xen at the bottom).
pub const GUEST_BASE: u64 = 0x40_0000; // 4 MiB

/// Size of the minor heap reservation: "the minor heap has a single 2 MB
/// extent that grows in 4 kB chunks" (§3.3).
pub const MINOR_HEAP_BYTES: u64 = 2 * 1024 * 1024;

/// One region of the computed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutRegion {
    /// Role of the region.
    pub region: Region,
    /// Page-aligned start.
    pub vaddr: u64,
    /// Extent in pages.
    pub pages: u64,
}

/// The computed Figure-2 layout for one unikernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    regions: Vec<LayoutRegion>,
    major_heap_base: u64,
    major_heap_pages: u64,
    io_base: u64,
    io_pages: u64,
}

impl MemoryLayout {
    /// Computes the standard layout for an image of `text_kib` + `data_kib`
    /// and a VM reservation of `mem_mib` MiB.
    ///
    /// The major heap takes all memory not used by text/data/minor-heap,
    /// minus the I/O reservation of `io_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if the memory reservation cannot hold the image plus minor
    /// heap plus I/O region.
    pub fn standard(text_kib: u64, data_kib: u64, mem_mib: u64, io_pages: u64) -> MemoryLayout {
        let page = PAGE_SIZE_BYTES as u64;
        let text_pages = (text_kib * 1024).div_ceil(page).max(1);
        let data_pages = (data_kib * 1024).div_ceil(page).max(1);
        let minor_pages = MINOR_HEAP_BYTES / page;
        let total_pages = mem_mib * 1024 * 1024 / page;
        let overhead = text_pages + 1 + data_pages + 1 + minor_pages + io_pages + 1;
        assert!(
            total_pages > overhead,
            "memory reservation too small for image + heaps + io"
        );
        let major_pages = total_pages - overhead;

        let mut regions = Vec::new();
        let mut cursor = GUEST_BASE;
        let mut push = |region: Region, pages: u64, cursor: &mut u64| -> u64 {
            let vaddr = *cursor;
            regions.push(LayoutRegion {
                region,
                vaddr,
                pages,
            });
            *cursor += pages * page;
            vaddr
        };
        push(Region::Text, text_pages, &mut cursor);
        push(Region::Guard, 1, &mut cursor);
        push(Region::Data, data_pages, &mut cursor);
        push(Region::Guard, 1, &mut cursor);
        // Minor heap then major heap, both Data-role (writable, NX).
        push(Region::Data, minor_pages, &mut cursor);
        let major_heap_base = push(Region::Data, major_pages, &mut cursor);
        push(Region::Guard, 1, &mut cursor);
        let io_base = push(Region::Io, io_pages, &mut cursor);

        MemoryLayout {
            regions,
            major_heap_base,
            major_heap_pages: major_pages,
            io_base,
            io_pages,
        }
    }

    /// The regions, low to high.
    pub fn regions(&self) -> &[LayoutRegion] {
        &self.regions
    }

    /// Base address of the major heap extent region.
    pub fn major_heap_base(&self) -> u64 {
        self.major_heap_base
    }

    /// Major heap size in bytes.
    pub fn major_heap_bytes(&self) -> u64 {
        self.major_heap_pages * PAGE_SIZE_BYTES as u64
    }

    /// Base address of the external I/O page region.
    pub fn io_base(&self) -> u64 {
        self.io_base
    }

    /// I/O region size in bytes.
    pub fn io_bytes(&self) -> u64 {
        self.io_pages * PAGE_SIZE_BYTES as u64
    }

    /// Whether the layout satisfies W^X by construction.
    pub fn satisfies_wx(&self) -> bool {
        // Region roles carry canonical protections; only a Text region is
        // executable and Text is never writable.
        true
    }

    /// Installs every region through `mmu_map` and, when `seal` is set,
    /// issues the seal hypercall — the unikernel start-of-day sequence of
    /// §2.3.3.
    ///
    /// # Errors
    ///
    /// Propagates any mapping or sealing failure (overlaps, W^X).
    pub fn apply(&self, env: &mut DomainEnv<'_>, seal: bool) -> Result<(), MemError> {
        for r in &self.regions {
            env.mmu_map(Mapping::for_region(r.region, r.vaddr, r.pages))?;
        }
        if seal {
            env.seal()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_hypervisor::{Guest, Hypervisor, Step};

    #[test]
    fn layout_is_contiguous_and_ordered() {
        let layout = MemoryLayout::standard(200, 64, 32, 64);
        let regions = layout.regions();
        for pair in regions.windows(2) {
            assert!(pair[0].vaddr < pair[1].vaddr, "monotonic layout");
            assert_eq!(
                pair[0].vaddr + pair[0].pages * PAGE_SIZE_BYTES as u64,
                pair[1].vaddr,
                "no gaps: the address space is contiguous (Figure 2)"
            );
        }
    }

    #[test]
    fn major_heap_gets_the_bulk_of_memory() {
        let layout = MemoryLayout::standard(200, 64, 128, 64);
        let total = 128 * 1024 * 1024;
        assert!(layout.major_heap_bytes() > total * 9 / 10);
    }

    #[test]
    #[should_panic(expected = "memory reservation too small")]
    fn tiny_reservation_rejected() {
        let _ = MemoryLayout::standard(200, 64, 2, 64);
    }

    #[test]
    fn apply_and_seal_in_a_real_domain() {
        struct Booter {
            layout: MemoryLayout,
        }
        impl Guest for Booter {
            fn step(&mut self, env: &mut DomainEnv<'_>) -> Step {
                self.layout.apply(env, true).unwrap();
                assert!(env.is_sealed());
                Step::Exit(0)
            }
        }
        let mut hv = Hypervisor::new();
        let layout = MemoryLayout::standard(200, 64, 32, 16);
        let d = hv.create_domain("boot", 32, Box::new(Booter { layout }));
        hv.run();
        assert_eq!(hv.exit_code(d), Some(0));
        let aspace = hv.address_space(d);
        assert!(aspace.is_sealed());
        assert!(aspace.satisfies_wx());
        assert!(aspace.lookup(GUEST_BASE).is_some(), "text mapped");
    }

    #[test]
    fn io_region_sits_above_the_heaps() {
        let layout = MemoryLayout::standard(200, 64, 32, 16);
        assert!(layout.io_base() > layout.major_heap_base());
        assert_eq!(layout.io_bytes(), 16 * PAGE_SIZE_BYTES as u64);
    }
}
