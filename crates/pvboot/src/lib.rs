//! PVBoot — start-of-day support for Mirage unikernels (paper §3.2).
//!
//! "PVBoot provides start-of-day support to initialise a VM with one
//! virtual CPU and Xen event channels, and jump to an entry function.
//! Unlike a conventional OS, multiple processes and preemptive threading
//! are not supported, and instead a single 64-bit address space is laid out
//! for the language runtime to use."
//!
//! This crate provides:
//!
//! * [`layout::MemoryLayout`] — the specialised single-address-space layout
//!   of Figure 2 (text+data, guard pages, minor/major heaps, external I/O
//!   region) and the code that installs it through `mmu_map` and optionally
//!   seals it.
//! * [`extent::ExtentAllocator`] — the 2 MiB-superpage extent allocator
//!   that backs the major heap.
//! * [`slab::SlabAllocator`] — the small slab allocator used by the C side
//!   of the runtime ("as most code is in OCaml it is not heavily used").
//! * [`heap::GcHeap`] — a cost model of the modified OCaml garbage
//!   collector over either backing allocator; this is the mechanism behind
//!   the Figure 7 `xen-malloc` vs `xen-extent` ablation.
//! * [`domainpoll`] — the blocking primitive: a [`Wake`] over a set of
//!   event channels plus a timeout.

pub mod extent;
pub mod heap;
pub mod layout;
pub mod slab;

use mirage_hypervisor::event::Port;
use mirage_hypervisor::{Time, Wake};

/// Builds the [`Wake`] condition for PVBoot's `domainpoll`: "blocks the VM
/// on a set of event channels and a timeout" (§3.2).
///
/// # Example
///
/// ```
/// use mirage_hypervisor::event::Port;
/// use mirage_hypervisor::Time;
/// use mirage_pvboot::domainpoll;
///
/// let wake = domainpoll(vec![Port(3), Port(7)], Some(Time::from_nanos(1_000)));
/// assert_eq!(wake.ports.len(), 2);
/// assert_eq!(wake.deadline, Some(Time::from_nanos(1_000)));
/// ```
pub fn domainpoll(ports: Vec<Port>, timeout: Option<Time>) -> Wake {
    Wake {
        deadline: timeout,
        ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domainpoll_without_timeout_blocks_on_events_only() {
        let wake = domainpoll(vec![Port(1)], None);
        assert_eq!(wake.deadline, None);
        assert_eq!(wake.ports, vec![Port(1)]);
    }

    #[test]
    fn domainpoll_with_no_ports_is_a_pure_sleep() {
        let wake = domainpoll(Vec::new(), Some(Time::from_nanos(5)));
        assert!(wake.ports.is_empty());
        assert_eq!(wake.deadline, Some(Time::from_nanos(5)));
    }
}
