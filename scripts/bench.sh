#!/usr/bin/env bash
# Network-path benchmark harness: runs the Figure 8 (TCP throughput),
# Figure 12 (dynamic web) and zero-copy ablation benches and distils the
# headline numbers into BENCH_net.json at the repo root.
#
#   scripts/bench.sh            # run benches, write BENCH_net.json
#   scripts/bench.sh --scale    # run the C1M scenario (examples/c1m) at
#                               # full scale and write BENCH_scale.json,
#                               # gating >=1M held connections and a
#                               # roughly flat (<=2x) quiet-tick cost
#                               # from 10k to 1M
#   scripts/bench.sh --cc       # race NewReno vs CUBIC (examples/cc_race)
#                               # over the loss x delay grid and write
#                               # BENCH_cc.json, gating CUBIC >= NewReno
#                               # goodput on the clean (zero-loss) cells
#   scripts/bench.sh --smp      # run the SMP matrix (examples/smp):
#                               # {1,16} flows x {1,2,4,8} vCPUs, writing
#                               # BENCH_smp.json and gating >=1.7x speedup
#                               # at 2 vCPUs and >=3x at 4 vCPUs on the
#                               # saturating 16-flow row, plus a zero
#                               # quiet-tick poll count on every core
#   scripts/bench.sh --virtio   # run the Figure 8 pairings with the ring
#                               # ABI as an axis (fig08_backends), writing
#                               # BENCH_virtio.json and gating each virtio
#                               # row to within 2x of its Xen twin
#
# Every writer hands its result to scripts/bench_guard.py, which refuses
# to overwrite a checked-in BENCH_*.json whose gated metrics would
# regress versus the recorded values.
#
# The micro_zerocopy bench asserts the copy-count gate itself (at most one
# software copy per delivered payload byte on the HTTP static-file path);
# a regression there fails this script before the JSON is written.

set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [[ "${1:-}" == "--scale" ]]; then
    out=BENCH_scale.json
    echo "== bench: c1m (one million connections; this takes a few minutes)"
    cargo build --release --offline --example c1m
    ./target/release/examples/c1m > "$tmp/c1m.out" 2> "$tmp/c1m.err"
    cat "$tmp/c1m.out" "$tmp/c1m.err"

    python3 - "$tmp" "$tmp/candidate.json" <<'PY'
import json, re, sys

tmp, out = sys.argv[1], sys.argv[2]
stdout = open(f"{tmp}/c1m.out").read()
stderr = open(f"{tmp}/c1m.err").read()

def need(pattern, blob, what):
    m = re.search(pattern, blob)
    if not m:
        sys.exit(f"FAIL: could not parse {what} from c1m output")
    return m

held = need(r"connections held\s*:\s*(\d+) on the server \((\d+) client-side\)",
            stdout, "connections held")
hot = need(r"hot subset\s*:\s*(\d+) streaming every [^,]+, (\d+) responses",
           stdout, "hot subset")
lat = need(r"accept latency\s*:\s*p50 ([\d.]+) us, p99 ([\d.]+) us over (\d+) handshakes",
           stdout, "accept latency")
audit = need(r"idle conn audit\s*:\s*(\d+) bytes/conn", stdout, "idle conn audit")
polls = need(r"timer polls / 8ms\s*:\s*(\d+) at (\d+) conns -> (\d+) at (\d+) conns",
             stdout, "timer polls")
tick = need(r"quiet tick\s*:\s*(\d+) ns/virtual-ms at (\d+) conns, (\d+) ns/virtual-ms at (\d+) conns \(x([\d.]+)\)",
            stderr, "tick cost")
storm = need(r"boot latency\s*:\s*p50 ([\d.]+) ms, p99 ([\d.]+) ms, max ([\d.]+) ms",
             stdout, "boot latency")
fleet = need(r"fleet\s*:\s*(\d+) sealed", stdout, "fleet size")
ready = need(r"whole storm ready at:\s*([\d.]+) ms", stdout, "storm ready")
rss = re.search(r"rss\s*:\s*(\d+) MiB total, (\d+) bytes/conn", stderr)

result = {
    "scenario": "c1m",
    "connections_held": int(held.group(1)),
    "connections_client_side": int(held.group(2)),
    "hot_subset": {"conns": int(hot.group(1)), "responses": int(hot.group(2))},
    "accept_latency_us": {"p50": float(lat.group(1)), "p99": float(lat.group(2)),
                          "handshakes": int(lat.group(3))},
    "bytes_per_idle_conn": {
        "stack_tables_audited": int(audit.group(1)),
        "rss_amortised": int(rss.group(2)) if rss else None,
    },
    "timer_polls_per_8ms": {
        "mid": {"conns": int(polls.group(2)), "polls": int(polls.group(1))},
        "full": {"conns": int(polls.group(4)), "polls": int(polls.group(3))},
    },
    "quiet_tick_ns_per_virtual_ms": {
        "mid": {"conns": int(tick.group(2)), "wall_ns": int(tick.group(1))},
        "full": {"conns": int(tick.group(4)), "wall_ns": int(tick.group(3))},
        "ratio": float(tick.group(5)),
    },
    "boot_storm": {
        "fleet": int(fleet.group(1)),
        "boot_ms": {"p50": float(storm.group(1)), "p99": float(storm.group(2)),
                    "max": float(storm.group(3))},
        "storm_ready_ms": float(ready.group(1)),
    },
}

# Gates: the appliance must actually hold a million concurrent
# connections, and the quiet-tick cost must stay roughly flat (O(due
# work), not O(connections)) across two orders of magnitude.
if result["connections_held"] < 1_000_000:
    sys.exit(f"FAIL: only {result['connections_held']} connections held (< 1,000,000)")
if result["quiet_tick_ns_per_virtual_ms"]["ratio"] > 2.0:
    sys.exit("FAIL: quiet-tick cost grew x%.2f from 10k to 1M connections (> 2.0)"
             % result["quiet_tick_ns_per_virtual_ms"]["ratio"])

with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("candidate ok (gates passed)")
PY
    python3 scripts/bench_guard.py "$out" "$tmp/candidate.json"
    echo "== bench: done"
    exit 0
fi

if [[ "${1:-}" == "--cc" ]]; then
    out=BENCH_cc.json
    echo "== bench: cc race (NewReno vs CUBIC over the loss x delay grid)"
    cargo build --release --offline --example cc_race
    ./target/release/examples/cc_race > "$tmp/cc.out"
    cat "$tmp/cc.out"

    python3 - "$tmp" "$tmp/candidate.json" <<'PY'
import json, re, sys

tmp, out = sys.argv[1], sys.argv[2]
stdout = open(f"{tmp}/cc.out").read()

seed = re.search(r"seed\s*:\s*(\d+)", stdout)
bytes_ = re.search(r"transfer\s*:\s*(\d+) bytes", stdout)
if not (seed and bytes_):
    sys.exit("FAIL: could not parse cc_race header")

cells = {}
cell = None
for line in stdout.splitlines():
    m = re.match(r"cell (\S+)", line)
    if m:
        cell = m.group(1)
        cells[cell] = {}
        continue
    m = re.match(
        r"\s+(newreno|cubic)\s*: goodput ([\d.]+) Mb/s, elapsed ([\d.]+) s, "
        r"retrans (\d+) \(fast (\d+), rto (\d+)\), cwnd\[ms:bytes\] (.*)",
        line,
    )
    if m and cell:
        cells[cell][m.group(1)] = {
            "goodput_mbps": float(m.group(2)),
            "elapsed_s": float(m.group(3)),
            "retransmits": {"total": int(m.group(4)), "fast": int(m.group(5)),
                            "rto": int(m.group(6))},
            "cwnd_trajectory": [
                {"ms": int(ms), "cwnd_bytes": int(cw)}
                for ms, cw in (s.split(":") for s in m.group(7).split())
            ],
        }

if len(cells) != 6 or any(set(v) != {"newreno", "cubic"} for v in cells.values()):
    sys.exit(f"FAIL: expected 6 cells x 2 algorithms, parsed {cells.keys()}")

# Gate: on the clean high-bandwidth-delay cells (zero loss), CUBIC must
# do at least as well as NewReno — the algorithms should be
# window-limited equals there, so any shortfall is a CUBIC bug.
for cell, algs in cells.items():
    if cell.startswith("loss0.0") and algs["cubic"]["goodput_mbps"] < algs["newreno"]["goodput_mbps"]:
        sys.exit(f"FAIL: CUBIC below NewReno on clean cell {cell}: "
                 f"{algs['cubic']['goodput_mbps']} < {algs['newreno']['goodput_mbps']} Mb/s")

result = {
    "scenario": "cc_race",
    "seed": int(seed.group(1)),
    "transfer_bytes": int(bytes_.group(1)),
    "cells": cells,
}
with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("candidate ok (gates passed)")
PY
    python3 scripts/bench_guard.py "$out" "$tmp/candidate.json"
    echo "== bench: done"
    exit 0
fi

if [[ "${1:-}" == "--smp" ]]; then
    out=BENCH_smp.json
    echo "== bench: smp matrix ({1,16} flows x {1,2,4,8} vCPUs + idle split)"
    cargo build --release --offline --example smp
    ./target/release/examples/smp > "$tmp/smp.out" 2> "$tmp/smp.err"
    cat "$tmp/smp.out" "$tmp/smp.err"

    python3 - "$tmp" "$tmp/candidate.json" <<'PY'
import json, re, sys

tmp, out = sys.argv[1], sys.argv[2]
stdout = open(f"{tmp}/smp.out").read()

bytes_ = re.search(r"transfer\s*:\s*(\d+) bytes/flow", stdout)
if not bytes_:
    sys.exit("FAIL: could not parse smp header")

matrix = {}
for m in re.finditer(
    r"cell flows=(\d+)\s+vcpus=(\d+) : goodput ([\d.]+) Mb/s \((\d+) bytes\)", stdout
):
    matrix.setdefault(f"flows{m.group(1)}", {})[m.group(2)] = {
        "goodput_mbps": float(m.group(3)),
        "bytes": int(m.group(4)),
    }
if set(matrix) != {"flows1", "flows16"} or any(
    set(row) != {"1", "2", "4", "8"} for row in matrix.values()
):
    sys.exit(f"FAIL: expected a full 2x4 matrix, parsed {matrix}")

scal = re.search(
    r"scaling\s*:\s*x([\d.]+) at 2 vcpus, x([\d.]+) at 4 vcpus, x([\d.]+) at 8 vcpus",
    stdout,
)
if not scal:
    sys.exit("FAIL: could not parse scaling summary")

idle = re.search(r"idle split\s*:\s*(\d+) conns held on (\d+) vcpus, (\d+) ms quiet window",
                 stdout)
if not idle:
    sys.exit("FAIL: could not parse idle split header")
per_core = [
    {"core": int(m.group(1)), "conns": int(m.group(2)), "quiet_polls": int(m.group(3))}
    for m in re.finditer(r"core (\d+)\s*: conns\s*(\d+), quiet timer polls (\d+)", stdout)
]
if len(per_core) != int(idle.group(2)):
    sys.exit(f"FAIL: expected {idle.group(2)} per-core lines, parsed {len(per_core)}")

result = {
    "scenario": "smp",
    "bytes_per_flow": int(bytes_.group(1)),
    "matrix": matrix,
    "speedup_16flows": {
        "x2": float(scal.group(1)),
        "x4": float(scal.group(2)),
        "x8": float(scal.group(3)),
    },
    "idle_split": {
        "conns": int(idle.group(1)),
        "vcpus": int(idle.group(2)),
        "quiet_ms": int(idle.group(3)),
        "per_core": per_core,
    },
}

# Gates: on the saturating 16-flow row the extra cores must actually buy
# throughput — >=1.7x at 2 vCPUs, >=3x at 4 — and a quiet tick must cost
# every core zero wheel polls (the C1M claim, per core).
if result["speedup_16flows"]["x2"] < 1.7:
    sys.exit("FAIL: 2-vCPU speedup x%.2f below 1.7x on the 16-flow row"
             % result["speedup_16flows"]["x2"])
if result["speedup_16flows"]["x4"] < 3.0:
    sys.exit("FAIL: 4-vCPU speedup x%.2f below 3.0x on the 16-flow row"
             % result["speedup_16flows"]["x4"])
for pc in result["idle_split"]["per_core"]:
    if pc["quiet_polls"] != 0:
        sys.exit("FAIL: core %d polled %d idle connections in a quiet window"
                 % (pc["core"], pc["quiet_polls"]))

with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("candidate ok (gates passed)")
PY
    python3 scripts/bench_guard.py "$out" "$tmp/candidate.json"
    echo "== bench: done"
    exit 0
fi

if [[ "${1:-}" == "--virtio" ]]; then
    out=BENCH_virtio.json
    echo "== bench: fig08 x backend (xen vs virtio over the iperf pairings)"
    cargo bench --offline -p mirage-bench --bench fig08_backends | tee "$tmp/backends.out"

    python3 - "$tmp" "$tmp/candidate.json" <<'PY'
import json, re, sys

tmp, out = sys.argv[1], sys.argv[2]
stdout = open(f"{tmp}/backends.out").read()

rows = {}
for m in re.finditer(
    r"^\s*(xen|virtio)\s+(Linux to Linux|Linux to Mirage|Mirage to Linux)\s+(\d+)\s+(\d+)\s*$",
    stdout, re.M,
):
    rows.setdefault(m.group(1), {})[m.group(2)] = {
        "mbps_1flow": int(m.group(3)),
        "mbps_4flows": int(m.group(4)),
    }
if set(rows) != {"xen", "virtio"} or any(len(v) != 3 for v in rows.values()):
    sys.exit(f"FAIL: expected 3 pairings x 2 backends, parsed {rows}")

smp = {}
for m in re.finditer(
    r"smp backend=(xen|virtio) vcpus=(\d+) flows=(\d+) : goodput ([\d.]+) Mb/s \((\d+) bytes\)",
    stdout,
):
    smp[m.group(1)] = {
        "vcpus": int(m.group(2)),
        "flows": int(m.group(3)),
        "goodput_mbps": float(m.group(4)),
        "bytes": int(m.group(5)),
    }
if set(smp) != {"xen", "virtio"}:
    sys.exit(f"FAIL: expected smp rows for both backends, parsed {smp}")

criterion = [json.loads(l) for l in stdout.splitlines() if l.startswith('{"name"')]

# Gates: both transports price the identical data path, so every virtio
# row must land within 2x of its Xen twin (either direction), and the
# byte counts must match exactly.
for pairing, xen_row in rows["xen"].items():
    vio_row = rows["virtio"][pairing]
    for key in ("mbps_1flow", "mbps_4flows"):
        ratio = vio_row[key] / max(xen_row[key], 1)
        if not (0.5 <= ratio <= 2.0):
            sys.exit(f"FAIL: {pairing} {key}: virtio {vio_row[key]} vs xen "
                     f"{xen_row[key]} Mb/s (x{ratio:.2f} outside [0.5, 2.0])")
if smp["xen"]["bytes"] != smp["virtio"]["bytes"]:
    sys.exit("FAIL: smp byte counts differ between backends")

result = {
    "scenario": "fig08_backends",
    "throughput": rows,
    "smp": smp,
    "criterion": criterion,
}
with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("candidate ok (gates passed)")
PY
    python3 scripts/bench_guard.py "$out" "$tmp/candidate.json"
    echo "== bench: done"
    exit 0
fi

out=BENCH_net.json

run_bench() {
    local name="$1"
    echo "== bench: $name"
    cargo bench --offline -p mirage-bench --bench "$name" | tee "$tmp/$name.out"
}

run_bench fig08_tcp
run_bench fig12_web
run_bench micro_zerocopy

python3 - "$tmp" "$tmp/candidate.json" <<'PY'
import json, re, sys

tmp, out = sys.argv[1], sys.argv[2]

def text(name):
    with open(f"{tmp}/{name}.out") as f:
        return f.read()

def criterion(blob):
    """The trailing {"name":...} summary lines each bench emits."""
    return [json.loads(l) for l in blob.splitlines() if l.startswith('{"name"')]

result = {"benches": {}}

# Figure 8: the live-stack throughput table (Mb/s, 1 and 10 flows).
fig08 = text("fig08_tcp")
tcp = {}
for line in fig08.splitlines():
    m = re.match(r"\s*(Linux to Linux|Linux to Mirage|Mirage to Linux)\s+(\d+)\s+(\d+)", line)
    if m:
        tcp[m.group(1)] = {"mbps_1flow": int(m.group(2)), "mbps_10flows": int(m.group(3))}
result["benches"]["fig08_tcp"] = {"throughput": tcp, "criterion": criterion(fig08)}

# Figure 12: the real B-tree request-path measurement.
result["benches"]["fig12_web"] = {"criterion": criterion(text("fig12_web"))}

# Zero-copy ablation: discipline speedup + the HTTP copy audit.
zc = text("micro_zerocopy")
entry = {"criterion": criterion(zc)}
m = re.search(r"zero-copy speedup: ([\d.]+)x", zc)
if m:
    entry["zero_copy_speedup"] = float(m.group(1))
m = re.search(
    r"http static path: (\d+) B delivered, (\d+) software copies \((\d+) B\), "
    r"(\d+) serialisations \((\d+) B\) -> ([\d.]+) copied bytes per delivered byte",
    zc,
)
if m:
    entry["http_static_path"] = {
        "delivered_bytes": int(m.group(1)),
        "copies": int(m.group(2)),
        "copy_bytes": int(m.group(3)),
        "serializes": int(m.group(4)),
        "serialize_bytes": int(m.group(5)),
        "copied_bytes_per_delivered_byte": float(m.group(6)),
    }
result["benches"]["micro_zerocopy"] = entry

with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("candidate ok")
PY
python3 scripts/bench_guard.py "$out" "$tmp/candidate.json"

echo "== bench: done"
