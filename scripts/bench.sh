#!/usr/bin/env bash
# Network-path benchmark harness: runs the Figure 8 (TCP throughput),
# Figure 12 (dynamic web) and zero-copy ablation benches and distils the
# headline numbers into BENCH_net.json at the repo root.
#
#   scripts/bench.sh            # run benches, write BENCH_net.json
#
# The micro_zerocopy bench asserts the copy-count gate itself (at most one
# software copy per delivered payload byte on the HTTP static-file path);
# a regression there fails this script before the JSON is written.

set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_net.json
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_bench() {
    local name="$1"
    echo "== bench: $name"
    cargo bench --offline -p mirage-bench --bench "$name" | tee "$tmp/$name.out"
}

run_bench fig08_tcp
run_bench fig12_web
run_bench micro_zerocopy

python3 - "$tmp" "$out" <<'PY'
import json, re, sys

tmp, out = sys.argv[1], sys.argv[2]

def text(name):
    with open(f"{tmp}/{name}.out") as f:
        return f.read()

def criterion(blob):
    """The trailing {"name":...} summary lines each bench emits."""
    return [json.loads(l) for l in blob.splitlines() if l.startswith('{"name"')]

result = {"benches": {}}

# Figure 8: the live-stack throughput table (Mb/s, 1 and 10 flows).
fig08 = text("fig08_tcp")
tcp = {}
for line in fig08.splitlines():
    m = re.match(r"\s*(Linux to Linux|Linux to Mirage|Mirage to Linux)\s+(\d+)\s+(\d+)", line)
    if m:
        tcp[m.group(1)] = {"mbps_1flow": int(m.group(2)), "mbps_10flows": int(m.group(3))}
result["benches"]["fig08_tcp"] = {"throughput": tcp, "criterion": criterion(fig08)}

# Figure 12: the real B-tree request-path measurement.
result["benches"]["fig12_web"] = {"criterion": criterion(text("fig12_web"))}

# Zero-copy ablation: discipline speedup + the HTTP copy audit.
zc = text("micro_zerocopy")
entry = {"criterion": criterion(zc)}
m = re.search(r"zero-copy speedup: ([\d.]+)x", zc)
if m:
    entry["zero_copy_speedup"] = float(m.group(1))
m = re.search(
    r"http static path: (\d+) B delivered, (\d+) software copies \((\d+) B\), "
    r"(\d+) serialisations \((\d+) B\) -> ([\d.]+) copied bytes per delivered byte",
    zc,
)
if m:
    entry["http_static_path"] = {
        "delivered_bytes": int(m.group(1)),
        "copies": int(m.group(2)),
        "copy_bytes": int(m.group(3)),
        "serializes": int(m.group(4)),
        "serialize_bytes": int(m.group(5)),
        "copied_bytes_per_delivered_byte": float(m.group(6)),
    }
result["benches"]["micro_zerocopy"] = entry

with open(out, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
PY

echo "== bench: done"
