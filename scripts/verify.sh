#!/usr/bin/env bash
# Tier-1 verify for mirage-rs: offline build + test, dependency gate,
# and example smoke tests. Run from anywhere; operates on the repo root.
#
#   scripts/verify.sh                # build, test, gate, examples
#   scripts/verify.sh --determinism  # additionally run the seeded
#                                    # double-test-run determinism check
#   scripts/verify.sh --bench        # additionally run scripts/bench.sh
#                                    # and gate on the zero-copy budget
#   scripts/verify.sh --chaos        # additionally run the chaos suite
#                                    # under ten fixed seeds, plus a
#                                    # same-seed double run diffed
#   scripts/verify.sh --adversarial  # additionally run the adversarial
#                                    # attack suite under ten fixed
#                                    # seeds, plus a same-seed double
#                                    # run diffed
#   scripts/verify.sh --cc           # additionally race NewReno vs CUBIC
#                                    # (examples/cc_race, reduced 1 MiB
#                                    # transfers) under ten fixed seeds,
#                                    # plus a same-seed double run diffed,
#                                    # then the full-size gated
#                                    # BENCH_cc.json via scripts/bench.sh
#   scripts/verify.sh --scale        # additionally run the C1M scale
#                                    # checks: a reduced (100k) c1m run
#                                    # twice with diffed stdout, the
#                                    # scale test suite at 100k in
#                                    # release, and the full 1M bench
#                                    # emitting a gated BENCH_scale.json
#   scripts/verify.sh --conformance  # additionally run the cross-backend
#                                    # differential conformance suite
#                                    # (Xen rings vs virtio virtqueues)
#                                    # under ten fixed seeds, plus a
#                                    # same-seed double run diffed, then
#                                    # the gated BENCH_virtio.json via
#                                    # scripts/bench.sh --virtio
#   scripts/verify.sh --smp          # additionally run the SMP matrix
#                                    # (examples/smp) twice under one
#                                    # fixed seed with diffed stdout —
#                                    # per-core executors and RSS-sharded
#                                    # stacks must stay byte-deterministic
#                                    # — then the gated BENCH_smp.json
#   scripts/verify.sh --all          # every gate above, with a per-gate
#                                    # wall-time summary at the end
#
# Flags combine: `verify.sh --chaos --adversarial` runs both extras.
#
# The workspace is fully self-contained (every dependency is a path
# dependency), so everything here runs with --offline: if a registry
# dependency ever creeps back in, the build itself fails, and the grep
# gate below names the offending manifest line.

set -euo pipefail
cd "$(dirname "$0")/.."

# Per-gate wall-time bookkeeping (printed when more than the base tier
# runs, always under --all).
timings=()
gate_t0=$SECONDS
mark() { gate_t0=$SECONDS; }
lap() { timings+=("$(printf '%-14s %5ss' "$1" "$((SECONDS - gate_t0))")"); }

echo "== gate: no registry dependencies in any manifest"
# (a) The crates the seed depended on must never return.
if grep -rEn '^(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)\b' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: registry dependency reintroduced (lines above)" >&2
    exit 1
fi
# (b) Generic: no dependency line may carry a version requirement —
# everything must be `path = ...` / `workspace = true`. (`^version` is
# the crate's own version field, not a dependency.)
if grep -rEn '=\s*\{?\s*"[~^]?[0-9]' Cargo.toml crates/*/Cargo.toml \
    | grep -vE '(version(\.workspace)?|resolver|edition)\s*=' ; then
    echo "FAIL: versioned (registry) dependency found (lines above)" >&2
    exit 1
fi
echo "   ok"

echo "== build (release, offline, all targets)"
cargo build --release --offline --workspace --all-targets

echo "== test (offline)"
cargo test -q --offline --workspace

echo "== examples"
for ex in quickstart boot_storm dns_appliance web_appliance openflow_appliance; do
    echo "   -- $ex"
    cargo run --release --offline --example "$ex" > /dev/null
done

lap tier1

want() {
    local flag="$1"
    shift
    for arg in "$@"; do
        [[ "$arg" == "$flag" ]] && return 0
    done
    return 1
}

if want --all "$@"; then
    set -- --determinism --bench --chaos --adversarial --conformance --cc --scale --smp
fi

if want --bench "$@"; then
    mark
    echo "== bench: network-path figures + zero-copy gate"
    scripts/bench.sh
    # The ablation bench already asserts the budget internally; re-check
    # the recorded number so a stale/edited JSON can't mask a regression.
    copies_per_byte="$(jq -r \
        '.benches.micro_zerocopy.http_static_path.copied_bytes_per_delivered_byte' \
        BENCH_net.json)"
    echo "   copied bytes per delivered byte: $copies_per_byte"
    awk -v c="$copies_per_byte" 'BEGIN { exit !(c != "null" && c <= 1.0) }' || {
        echo "FAIL: HTTP static path exceeds one software copy per delivered byte" >&2
        exit 1
    }
    echo "   ok (zero-copy budget held)"
    lap bench
fi

norm() { sed 's/finished in [0-9.]*s//'; }

if want --chaos "$@"; then
    mark
    echo "== chaos: fault-injection suite under ten fixed seeds"
    for seed in 1 2 3 5 8 13 42 97 1337 4242; do
        echo "   -- seed $seed"
        MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test chaos > /dev/null
    done
    echo "== chaos: two same-seed runs must print identical output"
    seed="${MIRAGE_TEST_SEED:-42}"
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test chaos 2>&1 | norm > /tmp/mirage-chaos-run1
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test chaos 2>&1 | norm > /tmp/mirage-chaos-run2
    diff /tmp/mirage-chaos-run1 /tmp/mirage-chaos-run2
    echo "   ok (seed $seed)"
    lap chaos
fi

if want --adversarial "$@"; then
    mark
    echo "== adversarial: seeded attack suite under ten fixed seeds"
    for seed in 1 2 3 5 8 13 42 97 1337 4242; do
        echo "   -- seed $seed"
        MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test adversarial > /dev/null
    done
    echo "== adversarial: two same-seed runs must print identical output"
    seed="${MIRAGE_TEST_SEED:-42}"
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test adversarial 2>&1 | norm > /tmp/mirage-adversarial-run1
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test adversarial 2>&1 | norm > /tmp/mirage-adversarial-run2
    diff /tmp/mirage-adversarial-run1 /tmp/mirage-adversarial-run2
    echo "   ok (seed $seed)"
    lap adversarial
fi

if want --conformance "$@"; then
    mark
    echo "== conformance: cross-backend differential suite under ten fixed seeds"
    for seed in 1 2 3 5 8 13 42 97 1337 4242; do
        echo "   -- seed $seed"
        MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test conformance > /dev/null
    done
    echo "== conformance: two same-seed runs must print identical output"
    seed="${MIRAGE_TEST_SEED:-42}"
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test conformance 2>&1 | norm > /tmp/mirage-conformance-run1
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --test conformance 2>&1 | norm > /tmp/mirage-conformance-run2
    diff /tmp/mirage-conformance-run1 /tmp/mirage-conformance-run2
    echo "   ok (seed $seed)"
    echo "== conformance: backend parity figures -> BENCH_virtio.json (gated)"
    scripts/bench.sh --virtio
    lap conformance
fi

if want --cc "$@"; then
    mark
    echo "== cc: congestion-control race under ten fixed seeds (1 MiB transfers)"
    cargo build --release --offline --example cc_race
    for seed in 1 2 3 5 8 13 42 97 1337 4242; do
        echo "   -- seed $seed"
        MIRAGE_CC_SEED="$seed" MIRAGE_CC_BYTES=1048576 \
            ./target/release/examples/cc_race > /dev/null
    done
    echo "== cc: two same-seed runs must print identical stdout"
    seed="${MIRAGE_CC_SEED:-42}"
    MIRAGE_CC_SEED="$seed" MIRAGE_CC_BYTES=1048576 \
        ./target/release/examples/cc_race > /tmp/mirage-cc-run1
    MIRAGE_CC_SEED="$seed" MIRAGE_CC_BYTES=1048576 \
        ./target/release/examples/cc_race > /tmp/mirage-cc-run2
    diff /tmp/mirage-cc-run1 /tmp/mirage-cc-run2
    echo "   ok (seed $seed, byte-identical)"
    echo "== cc: full-size race -> BENCH_cc.json (gated)"
    scripts/bench.sh --cc
    lap cc
fi

if want --scale "$@"; then
    mark
    echo "== scale: reduced c1m double run must print identical stdout"
    cargo build --release --offline --example c1m
    scale_env=(MIRAGE_C1M_CONNS=100000 MIRAGE_C1M_HOT=512 MIRAGE_C1M_STORM=100)
    env "${scale_env[@]}" ./target/release/examples/c1m 2> /dev/null > /tmp/mirage-scale-run1
    env "${scale_env[@]}" ./target/release/examples/c1m 2> /dev/null > /tmp/mirage-scale-run2
    diff /tmp/mirage-scale-run1 /tmp/mirage-scale-run2
    echo "   ok (100k connections, byte-identical)"
    echo "== scale: idle-poll regression at 100k (release)"
    MIRAGE_SCALE_CONNS=100000 cargo test -q --offline --release --test scale
    echo "== scale: full C1M bench -> BENCH_scale.json (gated)"
    scripts/bench.sh --scale
    lap scale
fi

if want --smp "$@"; then
    mark
    echo "== smp: two same-seed runs must print identical stdout"
    cargo build --release --offline --example smp
    seed="${MIRAGE_TEST_SEED:-42}"
    MIRAGE_TEST_SEED="$seed" ./target/release/examples/smp 2> /dev/null > /tmp/mirage-smp-run1
    MIRAGE_TEST_SEED="$seed" ./target/release/examples/smp 2> /dev/null > /tmp/mirage-smp-run2
    diff /tmp/mirage-smp-run1 /tmp/mirage-smp-run2
    echo "   ok (seed $seed, byte-identical)"
    echo "== smp: matrix + idle split -> BENCH_smp.json (gated)"
    scripts/bench.sh --smp
    lap smp
fi

if want --determinism "$@"; then
    mark
    echo "== determinism: two test runs under one seed must be identical"
    seed="${MIRAGE_TEST_SEED:-42}"
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --workspace 2>&1 | norm > /tmp/mirage-verify-run1
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --workspace 2>&1 | norm > /tmp/mirage-verify-run2
    diff /tmp/mirage-verify-run1 /tmp/mirage-verify-run2
    echo "   ok (seed $seed)"
    lap determinism
fi

if [[ ${#timings[@]} -gt 1 ]]; then
    echo "== gate timings"
    for t in "${timings[@]}"; do
        echo "   $t"
    done
fi
echo "== verify: PASS"
