#!/usr/bin/env bash
# Tier-1 verify for mirage-rs: offline build + test, dependency gate,
# and example smoke tests. Run from anywhere; operates on the repo root.
#
#   scripts/verify.sh                # build, test, gate, examples
#   scripts/verify.sh --determinism  # additionally run the seeded
#                                    # double-test-run determinism check
#
# The workspace is fully self-contained (every dependency is a path
# dependency), so everything here runs with --offline: if a registry
# dependency ever creeps back in, the build itself fails, and the grep
# gate below names the offending manifest line.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gate: no registry dependencies in any manifest"
# (a) The crates the seed depended on must never return.
if grep -rEn '^(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)\b' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: registry dependency reintroduced (lines above)" >&2
    exit 1
fi
# (b) Generic: no dependency line may carry a version requirement —
# everything must be `path = ...` / `workspace = true`. (`^version` is
# the crate's own version field, not a dependency.)
if grep -rEn '=\s*\{?\s*"[~^]?[0-9]' Cargo.toml crates/*/Cargo.toml \
    | grep -vE '(version(\.workspace)?|resolver|edition)\s*=' ; then
    echo "FAIL: versioned (registry) dependency found (lines above)" >&2
    exit 1
fi
echo "   ok"

echo "== build (release, offline, all targets)"
cargo build --release --offline --workspace --all-targets

echo "== test (offline)"
cargo test -q --offline --workspace

echo "== examples"
for ex in quickstart boot_storm dns_appliance web_appliance openflow_appliance; do
    echo "   -- $ex"
    cargo run --release --offline --example "$ex" > /dev/null
done

if [[ "${1:-}" == "--determinism" ]]; then
    echo "== determinism: two test runs under one seed must be identical"
    seed="${MIRAGE_TEST_SEED:-42}"
    norm() { sed 's/finished in [0-9.]*s//'; }
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --workspace 2>&1 | norm > /tmp/mirage-verify-run1
    MIRAGE_TEST_SEED="$seed" cargo test -q --offline --workspace 2>&1 | norm > /tmp/mirage-verify-run2
    diff /tmp/mirage-verify-run1 /tmp/mirage-verify-run2
    echo "   ok (seed $seed)"
fi

echo "== verify: PASS"
