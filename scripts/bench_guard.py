#!/usr/bin/env python3
"""Gate-regression guard for the checked-in BENCH_*.json files.

scripts/bench.sh writes every freshly-measured result to a candidate file
and asks this guard to install it. The guard compares the candidate's
*gated* metrics against the checked-in file and refuses the overwrite if
any would regress — so a bench run can never silently replace a good
recorded number with a worse one. (The absolute gates in bench.sh still
apply first; this is the relative, monotone check on top.)

Usage: bench_guard.py <checked-in path> <candidate path>

Installs the candidate over the checked-in file on success; exits
nonzero and leaves the checked-in file untouched on regression.

Only virtual-time-derived (deterministic) metrics are guarded; wall-clock
figures jitter and are covered by the absolute gates alone. Each metric
carries a relative slack so intentional small shifts from legitimate code
changes don't need a guard override — delete the stale checked-in file to
accept a larger, deliberate regression.
"""

import json
import os
import shutil
import sys


def get(node, path):
    for key in path:
        if isinstance(node, dict):
            node = node.get(key)
        elif isinstance(node, list) and isinstance(key, int) and key < len(node):
            node = node[key]
        else:
            return None
    return node


def gates_for(name, old):
    """(json path, higher_is_better, relative slack) per scenario."""
    if name == "BENCH_net.json":
        return [
            (
                ["benches", "micro_zerocopy", "http_static_path",
                 "copied_bytes_per_delivered_byte"],
                False,
                0.05,
            )
        ]
    if name == "BENCH_scale.json":
        return [(["connections_held"], True, 0.0)]
    if name == "BENCH_cc.json":
        # The gate: CUBIC >= NewReno goodput on every clean (zero-loss)
        # cell. Guard the CUBIC goodput on those cells.
        return [
            (["cells", cell, "cubic", "goodput_mbps"], True, 0.05)
            for cell in sorted(get(old, ["cells"]) or {})
            if cell.startswith("loss0.0")
        ]
    if name == "BENCH_smp.json":
        return [
            (["speedup_16flows", "x2"], True, 0.05),
            (["speedup_16flows", "x4"], True, 0.05),
        ]
    if name == "BENCH_virtio.json":
        # Virtual-time goodput is deterministic; guard the virtio rows so
        # a transport regression can't silently overwrite good numbers.
        return [
            (["throughput", "virtio", pairing, "mbps_1flow"], True, 0.05)
            for pairing in sorted(get(old, ["throughput", "virtio"]) or {})
        ] + [(["smp", "virtio", "goodput_mbps"], True, 0.05)]
    return []


def main():
    checked_in, candidate = sys.argv[1], sys.argv[2]
    with open(candidate) as f:
        new = json.load(f)

    if os.path.exists(checked_in):
        with open(checked_in) as f:
            old = json.load(f)
        name = os.path.basename(checked_in)
        failures = []
        for path, higher_better, slack in gates_for(name, old):
            old_v, new_v = get(old, path), get(new, path)
            if old_v is None or new_v is None:
                continue
            if higher_better:
                ok = new_v >= old_v * (1.0 - slack)
            else:
                ok = new_v <= old_v * (1.0 + slack)
            if not ok:
                dotted = ".".join(str(p) for p in path)
                failures.append(f"  {dotted}: {old_v} -> {new_v}")
        if failures:
            print(f"FAIL: refusing to overwrite {checked_in} — gated metrics regress "
                  f"versus the checked-in file:", file=sys.stderr)
            for line in failures:
                print(line, file=sys.stderr)
            print("(fix the regression, or delete the checked-in file to accept it)",
                  file=sys.stderr)
            sys.exit(1)

    shutil.move(candidate, checked_in)
    print(f"wrote {checked_in}")


if __name__ == "__main__":
    main()
