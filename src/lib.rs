//! # mirage-rs — unikernels as a Rust library
//!
//! A full-system reproduction of *Unikernels: Library Operating Systems for
//! the Cloud* (Madhavapeddy et al., ASPLOS 2013). This facade crate
//! re-exports every subsystem of the workspace so that appliances, examples
//! and experiments can be written against one coherent namespace:
//!
//! * [`hypervisor`] — the Xen-like substrate: domains, virtual clock, event
//!   channels, grant tables, the `seal` hypercall, vchan, and the toolstack.
//! * [`pvboot`] — start-of-day memory layout, extent/slab allocators,
//!   `domainpoll`.
//! * [`runtime`] — the cooperative (Lwt-style) executor and timers.
//! * [`cstruct`] — zero-copy I/O pages, views and endian accessors.
//! * [`ring`] — shared-memory producer/consumer rings.
//! * [`devices`] — netfront/netback, blkfront/blkback, console.
//! * [`net`] — Ethernet, ARP, IPv4, ICMP, UDP, TCP (New Reno), DHCP.
//! * [`storage`] — block layer, FAT-32, append B-tree, KV, memoization.
//! * [`dns`], [`http`], [`openflow`] — the appliance protocol suites.
//! * [`core`] — the unikernel builder: configuration, dead-code
//!   elimination, compile-time ASR, image sizing and sealing.
//! * [`baseline`] — the conventional-OS comparison stack (Linux-like VM
//!   model plus BIND/NSD/Apache/nginx/NOX/Maestro analogues).
//!
//! ## Quickstart
//!
//! ```
//! use mirage::core::{Appliance, Library};
//! use mirage::hypervisor::Hypervisor;
//!
//! // Assemble a DNS appliance out of libraries, exactly as the paper's
//! // toolchain links OCaml libraries into a bootable kernel.
//! let appliance = Appliance::builder("dns")
//!     .library(Library::NET_UDP)
//!     .library(Library::APP_DNS)
//!     .static_config("zone", "example.org")
//!     .build()
//!     .expect("dependency closure resolves");
//!
//! assert!(appliance.image().size_bytes() < 1 << 20, "unikernels are small");
//! let mut hv = Hypervisor::new();
//! # let _ = &mut hv;
//! ```

pub use mirage_baseline as baseline;
pub use mirage_core as core;
pub use mirage_cstruct as cstruct;
pub use mirage_devices as devices;
pub use mirage_dns as dns;
pub use mirage_http as http;
pub use mirage_hypervisor as hypervisor;
pub use mirage_net as net;
pub use mirage_openflow as openflow;
pub use mirage_pvboot as pvboot;
pub use mirage_ring as ring;
pub use mirage_runtime as runtime;
pub use mirage_storage as storage;
