//! The §4.4 "Twitter-like" dynamic web appliance: HTTP server + append-only
//! copy-on-write B-tree in one unikernel, exercised by an httperf-style
//! client session (1 POST + GETs of the last tweets).
//!
//! ```text
//! cargo run --example web_appliance
//! ```

use mirage::devices::netfront::CopyDiscipline;
use mirage::devices::{Backend, DriverDomain, Xenstore};
use mirage::http::{HandlerFuture, HttpConnection, HttpServer, Request, Response, Router};
use mirage::hypervisor::{Dur, Hypervisor, Time};
use mirage::net::{Ipv4Addr, Mac, Stack, StackConfig};
use mirage::runtime::UnikernelGuest;
use mirage::storage::{BlkDevice, BlockLog, Tree};

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 80);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 99);

fn main() {
    // One flag picks the ring ABI for every device below:
    // MIRAGE_BACKEND=xen (default) or MIRAGE_BACKEND=virtio.
    let backend = Backend::from_env();
    println!("[world] device backend: {backend}");

    let xs = Xenstore::new();
    let mut hv = Hypervisor::new();
    hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

    // The appliance: net frontend + blk frontend + HTTP + B-tree, one VM.
    let (netf, nh) = backend.net(xs.clone(), "web0", Mac::local(80).0, CopyDiscipline::ZeroCopy);
    let (blkf, bh) = backend.blk(xs.clone(), "vda", 1 << 16);
    let mut appliance = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh, StackConfig::static_ip(SERVER_IP));
        let rt2 = rt.clone();
        rt.spawn(async move {
            // Tweets persist in the copy-on-write B-tree on the virtual
            // disk — the Baardskeerder port of §3.5.2.
            let disk = BlkDevice::new(&rt2, bh);
            let tree = Tree::new(BlockLog::new(disk, 0));
            let tree_post = tree.clone();
            let tree_get = tree.clone();
            let router = Router::new()
                .post("/tweet", move |req: Request| -> HandlerFuture {
                    let tree = tree_post.clone();
                    Box::pin(async move {
                        let (_, query) = req.split_query();
                        let user = query.unwrap_or("anon").to_owned();
                        let seq = tree.scan().await.map(|v| v.len()).unwrap_or(0);
                        let key = format!("{seq:08}:{user}");
                        match tree.set(key.as_bytes(), &req.body).await {
                            Ok(()) => Response::status(201),
                            Err(_) => Response::status(500),
                        }
                    })
                })
                .get("/timeline", move |_req: Request| -> HandlerFuture {
                    let tree = tree_get.clone();
                    Box::pin(async move {
                        match tree.scan().await {
                            Ok(entries) => {
                                let mut body = String::new();
                                for (k, v) in entries.iter().rev().take(100) {
                                    body.push_str(&format!(
                                        "{}: {}\n",
                                        String::from_utf8_lossy(k),
                                        String::from_utf8_lossy(v)
                                    ));
                                }
                                Response::ok("text/plain", body.into_bytes())
                            }
                            Err(_) => Response::status(500),
                        }
                    })
                });
            let server = HttpServer::new(router);
            let stats = server.stats();
            let listener = stack.tcp_listen(80).await.expect("port 80");
            let code = server.serve(rt2.clone(), listener).await;
            println!(
                "[web] served {} requests",
                stats.requests.load(std::sync::atomic::Ordering::Relaxed)
            );
            code
        })
    });
    appliance.add_device(netf);
    appliance.add_device(blkf);
    hv.create_domain("web-appliance", 64, Box::new(appliance));

    // httperf-style session: 1 POST + 9 timeline GETs.
    let (front_c, nh_c) =
        backend.net(xs.clone(), "perf", Mac::local(99).0, CopyDiscipline::ZeroCopy);
    let mut client = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh_c, StackConfig::static_ip(CLIENT_IP));
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Dur::millis(5)).await;
            let mut conn = HttpConnection::open(&stack, SERVER_IP, 80).await.unwrap();
            for i in 0..3 {
                let resp = conn
                    .request(&Request::post(
                        format!("/tweet?user=alice{i}"),
                        format!("unikernels are small ({i})").into_bytes(),
                    ))
                    .await
                    .unwrap();
                println!("[httperf] POST /tweet -> {}", resp.status);
            }
            for _ in 0..9 {
                let resp = conn.request(&Request::get("/timeline")).await.unwrap();
                assert_eq!(resp.status, 200);
            }
            let resp = conn.request(&Request::get("/timeline")).await.unwrap();
            println!("[httperf] timeline:\n{}", String::from_utf8_lossy(&resp.body));
            conn.close().await;
            0
        })
    });
    client.add_device(front_c);
    let cdom = hv.create_domain("httperf", 32, Box::new(client));

    hv.run_until(Time::ZERO + Dur::secs(30));
    assert_eq!(hv.exit_code(cdom), Some(0));
    println!("[world] done at {}", hv.now());
}
