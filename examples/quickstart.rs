//! Quickstart: build a unikernel appliance from libraries, boot it on the
//! simulated hypervisor, and watch it seal itself, bring up a NIC over the
//! backend of your choice, and run.
//!
//! ```text
//! cargo run --example quickstart                        # Xen-style rings
//! MIRAGE_BACKEND=virtio cargo run --example quickstart  # split virtqueues
//! ```

use mirage::core::{Appliance, DceLevel, Library};
use mirage::cstruct::PktBuf;
use mirage::devices::netfront::CopyDiscipline;
use mirage::devices::{Backend, DriverDomain, Tap, Xenstore};
use mirage::hypervisor::{Dur, Hypervisor};

fn main() {
    // 1. Configuration is code: pick libraries, bake static config, leave
    //    instance identity dynamic (paper §2.1).
    let appliance = Appliance::builder("hello-unikernel")
        .library(Library::APP_HTTP)
        .library(Library::NET_DHCP)
        .static_config("banner", "hello from a unikernel")
        .dynamic_config("ip")
        .dce(DceLevel::FunctionLevel)
        .build()
        .expect("the library closure resolves");

    println!("appliance      : {}", appliance.name());
    println!(
        "image size     : {} kB (dead-code eliminated)",
        appliance.image().size_bytes() / 1000
    );
    println!("active LoC     : {}", appliance.image().total_loc());
    println!(
        "libraries      : {}",
        appliance
            .link_set()
            .libraries()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "cloneable image: {} (a static banner is baked in)",
        appliance.image().is_cloneable()
    );

    // 2. Pick a device backend — one flag swaps the whole transport
    //    (MIRAGE_BACKEND=xen|virtio, Xen-style rings by default).
    let backend = Backend::from_env();
    println!("net backend    : {backend}");

    let xs = Xenstore::new();
    let mut hv = Hypervisor::new();
    let tap = Tap::new([0x02, 0, 0, 0, 0, 0x01]);
    let mut dom0 = DriverDomain::new(xs.clone());
    dom0.add_tap(tap.clone());
    hv.create_domain("dom0", 512, Box::new(dom0));

    let mac = [0x02, 0, 0, 0, 0, 0x42];
    let (nic, nh) = backend.net(xs.clone(), "eth0", mac, CopyDiscipline::ZeroCopy);

    // 3. Boot it: the guest installs the Figure 2 memory layout, seals its
    //    page tables (§2.3.3), then runs its main lightweight thread —
    //    which announces itself on the wire through the chosen transport.
    let mut guest = appliance.into_guest(32, move |env, rt| {
        assert!(env.is_sealed(), "W^X page tables are frozen before main");
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Dur::millis(3)).await;
            let mut frame = Vec::new();
            frame.extend_from_slice(&[0xFF; 6]); // broadcast
            frame.extend_from_slice(&mac);
            frame.extend_from_slice(&[0x08, 0x00]);
            frame.extend_from_slice(b"hello from a unikernel");
            nh.tx.send(PktBuf::from_vec(frame)).unwrap();
            // Stay alive until the driver has flushed the frame.
            while nh.stats().tx_frames < 1 {
                rt2.sleep(Dur::micros(50)).await;
            }
            println!("main thread    : ran inside the sealed unikernel");
            42
        })
    });
    guest.add_device(nic);
    let dom = hv.create_domain("hello", 32, Box::new(guest));
    hv.run_until(mirage::hypervisor::Time::ZERO + Dur::secs(1));

    let seen = tap.harvest();
    println!(
        "on the wire    : {} frame(s) via {backend}, payload {:?}",
        seen.len(),
        seen.first().map(|f| String::from_utf8_lossy(&f[14..]).into_owned()).unwrap_or_default()
    );

    println!(
        "booted at      : {} (virtual time)",
        hv.observation(dom, "unikernel-booted").expect("booted").at
    );
    println!("exit code      : {:?}", hv.exit_code(dom));
    println!(
        "sealed + W^X   : {} / {}",
        hv.address_space(dom).is_sealed(),
        hv.address_space(dom).satisfies_wx()
    );
}
