//! Quickstart: build a unikernel appliance from libraries, boot it on the
//! simulated hypervisor, and watch it seal itself and run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mirage::core::{Appliance, DceLevel, Library};
use mirage::hypervisor::{Dur, Hypervisor};

fn main() {
    // 1. Configuration is code: pick libraries, bake static config, leave
    //    instance identity dynamic (paper §2.1).
    let appliance = Appliance::builder("hello-unikernel")
        .library(Library::APP_HTTP)
        .library(Library::NET_DHCP)
        .static_config("banner", "hello from a unikernel")
        .dynamic_config("ip")
        .dce(DceLevel::FunctionLevel)
        .build()
        .expect("the library closure resolves");

    println!("appliance      : {}", appliance.name());
    println!(
        "image size     : {} kB (dead-code eliminated)",
        appliance.image().size_bytes() / 1000
    );
    println!("active LoC     : {}", appliance.image().total_loc());
    println!(
        "libraries      : {}",
        appliance
            .link_set()
            .libraries()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "cloneable image: {} (a static banner is baked in)",
        appliance.image().is_cloneable()
    );

    // 2. Boot it: the guest installs the Figure 2 memory layout, seals its
    //    page tables (§2.3.3), then runs its main lightweight thread.
    let guest = appliance.into_guest(32, |env, rt| {
        assert!(env.is_sealed(), "W^X page tables are frozen before main");
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Dur::millis(3)).await;
            println!("main thread    : ran inside the sealed unikernel");
            42
        })
    });

    let mut hv = Hypervisor::new();
    let dom = hv.create_domain("hello", 32, Box::new(guest));
    hv.run();

    println!(
        "booted at      : {} (virtual time)",
        hv.observation(dom, "unikernel-booted").expect("booted").at
    );
    println!("exit code      : {:?}", hv.exit_code(dom));
    println!(
        "sealed + W^X   : {} / {}",
        hv.address_space(dom).is_sealed(),
        hv.address_space(dom).satisfies_wx()
    );
}
