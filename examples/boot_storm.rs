//! Micro-reboot demo (paper §4.1.1): "Such fast reboot times mitigate the
//! concern that redeployment by reconfiguration is too heavyweight, as
//! well as opening up the possibility of regular micro-reboots." Launch a
//! whole fleet of unikernels through the parallel toolstack and watch the
//! entire storm come up in well under a second of virtual time.
//!
//! ```text
//! cargo run --example boot_storm
//! ```

use mirage::core::{Appliance, Library};
use mirage::hypervisor::toolstack::{BuildMode, DomainSpec, Toolstack};
use mirage::hypervisor::{Hypervisor, Time};

fn main() {
    const FLEET: usize = 50;
    let mut hv = Hypervisor::with_pcpus(6);
    let ts = Toolstack::new(BuildMode::Parallel);

    let specs: Vec<DomainSpec> = (0..FLEET)
        .map(|i| {
            // Each instance is a fresh deployment: new CT-ASR layout seed
            // (paper §2.3.4: randomise "potentially for every deployment").
            let appliance = Appliance::builder(&format!("micro-{i}"))
                .library(Library::APP_DNS)
                .dynamic_config("ip")
                .layout_seed(0xB007 + i as u64)
                .build()
                .expect("valid appliance");
            let guest = appliance.into_guest(16, move |env, rt| {
                env.observe("boot-ready");
                rt.spawn(async move { i as i64 })
            });
            DomainSpec::new(format!("micro-{i}"), 16, Box::new(guest))
        })
        .collect();

    let built = ts.build(&mut hv, specs);
    hv.run();

    let mut ready_times: Vec<f64> = built
        .iter()
        .map(|b| {
            hv.observation(b.dom, "boot-ready")
                .expect("booted")
                .at
                .since(b.requested)
                .as_millis_f64()
        })
        .collect();
    ready_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let storm_end = built
        .iter()
        .map(|b| hv.observation(b.dom, "boot-ready").expect("booted").at)
        .max()
        .expect("fleet non-empty");

    println!("fleet size          : {FLEET} sealed DNS unikernels");
    println!("fastest boot        : {:.1} ms", ready_times[0]);
    println!("median boot         : {:.1} ms", ready_times[FLEET / 2]);
    println!("slowest boot        : {:.1} ms", ready_times[FLEET - 1]);
    println!(
        "whole storm ready at: {:.1} ms of virtual time",
        storm_end.since(Time::ZERO).as_millis_f64()
    );
    for b in &built {
        assert_eq!(hv.exit_code(b.dom).map(|c| c >= 0), Some(true));
        assert!(hv.address_space(b.dom).is_sealed());
    }
    println!("all {FLEET} exited cleanly with sealed page tables");
}
