//! The §4.3 OpenFlow pair: a controller appliance running the learning
//! switch application, and a datapath appliance punting misses to it over
//! a real TCP control channel — then forwarding on its own fast path.
//!
//! ```text
//! cargo run --example openflow_appliance
//! ```

use mirage::devices::netfront::{CopyDiscipline, Netfront};
use mirage::devices::{DriverDomain, Xenstore};
use mirage::hypervisor::{Dur, Hypervisor, Time};
use mirage::net::{Ipv4Addr, Mac, Stack, StackConfig};
use mirage::openflow::{Connection, Forward, LearningSwitch, OfSwitch};
use mirage::runtime::UnikernelGuest;

const CTRL_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 6);
const SW_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);

fn eth(dst: u8, src: u8) -> Vec<u8> {
    let mut f = vec![0x02, 0, 0, 0, 0, dst, 0x02, 0, 0, 0, 0, src, 0x08, 0x00];
    f.extend_from_slice(&[0u8; 46]);
    f
}

fn main() {
    let xs = Xenstore::new();
    let mut hv = Hypervisor::new();
    hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

    // Controller appliance.
    let (front_c, nh_c) = Netfront::new(xs.clone(), "ctrl", Mac::local(6).0, CopyDiscipline::ZeroCopy);
    let mut ctrl = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh_c, StackConfig::static_ip(CTRL_IP));
        rt.spawn(async move {
            let mut listener = stack.tcp_listen(6633).await.unwrap();
            let mut stream = listener.accept().await.unwrap();
            let (mut session, hello) = Connection::open(LearningSwitch::new());
            stream.write(&hello);
            while session.stats().packet_ins < 2 {
                let Some(chunk) = stream.read().await else { break };
                let out = session.feed(&chunk).expect("valid control stream");
                if !out.is_empty() {
                    stream.write(&out);
                }
            }
            println!(
                "[controller] dpid={:?}: {} packet-ins, {} flows installed, {} floods",
                session.datapath_id(),
                session.stats().packet_ins,
                session.app().flows_installed,
                session.app().floods
            );
            stream.close();
            stream.wait_closed().await;
            0i64
        })
    });
    ctrl.add_device(Box::new(front_c));
    hv.create_domain("controller", 32, Box::new(ctrl));

    // Datapath appliance.
    let (front_s, nh_s) = Netfront::new(xs.clone(), "dp", Mac::local(7).0, CopyDiscipline::ZeroCopy);
    let mut dp = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh_s, StackConfig::static_ip(SW_IP));
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Dur::millis(5)).await;
            let mut stream = stack.tcp_connect(CTRL_IP, 6633).await.unwrap();
            let mut sw = OfSwitch::new(0xD0D0, 4);
            stream.write(&sw.hello());
            // Handshake first.
            let mut handshaken = false;
            while !handshaken {
                let chunk = stream.read().await.expect("controller alive");
                let (replies, _) = sw.feed_control(&chunk).unwrap();
                if !replies.is_empty() {
                    stream.write(&replies);
                    handshaken = true;
                }
            }
            println!("[datapath] handshake complete");

            // host A (port 1) talks to host B (port 2): first two frames
            // miss and punt; the controller learns and installs a flow.
            let mut punts = Vec::new();
            for (dst, src, port) in [(0xB, 0xA, 1u16), (0xA, 0xB, 2)] {
                match sw.process_frame(port, &eth(dst, src)) {
                    Forward::Punt(pi) => punts.push(pi),
                    other => println!("[datapath] unexpected {other:?}"),
                }
            }
            stream.write(&punts[0]);
            let mut sent_second = false;
            let mut emitted = 0usize;
            while sw.flows().is_empty() {
                let Some(chunk) = stream.read().await else { break };
                let (replies, frames) = sw.feed_control(&chunk).unwrap();
                emitted += frames.len();
                if !replies.is_empty() {
                    stream.write(&replies);
                }
                if !sent_second && emitted > 0 {
                    sent_second = true;
                    stream.write(&punts[1]);
                }
            }
            println!(
                "[datapath] {} packet-outs applied, {} flow(s) in the table",
                emitted,
                sw.flows().len()
            );
            // Fast path: the same frame now forwards without the controller.
            let fwd = sw.process_frame(2, &eth(0xA, 0xB));
            println!("[datapath] fast-path forward: {fwd:?}");
            println!(
                "[datapath] stats: {} table hits, {} punts",
                sw.stats().table_hits,
                sw.stats().punts
            );
            stream.close();
            stream.wait_closed().await;
            0i64
        })
    });
    dp.add_device(Box::new(front_s));
    let ddom = hv.create_domain("datapath", 32, Box::new(dp));

    hv.run_until(Time::ZERO + Dur::secs(10));
    assert_eq!(hv.exit_code(ddom), Some(0));
    println!("[world] done at {}", hv.now());
}
