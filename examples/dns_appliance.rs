//! The paper's flagship appliance (§4.2): an authoritative DNS server,
//! booted as a unikernel next to a resolver client, exchanging real DNS
//! over UDP/IP/Ethernet through the simulated Xen fabric.
//!
//! ```text
//! cargo run --example dns_appliance
//! ```

use mirage::devices::netfront::{CopyDiscipline, Netfront};
use mirage::devices::{DriverDomain, Xenstore};
use mirage::dns::{DnsName, DnsServer, Message, RType, ServerConfig, Zone};
use mirage::hypervisor::{Dur, Hypervisor, Time};
use mirage::net::{Ipv4Addr, Mac, Stack, StackConfig};
use mirage::runtime::UnikernelGuest;

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

const ZONE: &str = r#"
$ORIGIN example.org.
$TTL 300
@     IN SOA   ns1 hostmaster 2013031601
@     IN NS    ns1
ns1   IN A     10.0.0.53
www   IN A     10.0.0.80
blog  IN CNAME www
mail  IN MX    10 mx1.example.org.
mx1   IN A     10.0.0.25
"#;

fn main() {
    let xs = Xenstore::new();
    let mut hv = Hypervisor::new();
    hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

    // The DNS appliance: zone file + server + UDP loop, one unikernel.
    let (front, nh) = Netfront::new(xs.clone(), "dns0", Mac::local(53).0, CopyDiscipline::ZeroCopy);
    let mut appliance = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh, StackConfig::static_ip(SERVER_IP));
        let rt2 = rt.clone();
        rt.spawn(async move {
            let zone = Zone::parse(ZONE).expect("zone file parses");
            println!("[dns] serving {} ({} records, memoized)", zone.origin(), zone.record_count());
            let server = DnsServer::new(zone, ServerConfig::default());
            let sock = stack.udp_bind(53).await.expect("port 53");
            server.serve_udp(rt2, sock).await
        })
    });
    appliance.add_device(Box::new(front));
    hv.create_domain("dns-appliance", 32, Box::new(appliance));

    // A resolver asking a few questions.
    let (front_c, nh_c) = Netfront::new(xs.clone(), "cli0", Mac::local(9).0, CopyDiscipline::ZeroCopy);
    let mut client = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh_c, StackConfig::static_ip(CLIENT_IP));
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Dur::millis(5)).await;
            let mut sock = stack.udp_bind(40000).await.unwrap();
            for (id, name, rtype) in [
                (1u16, "www.example.org", RType::A),
                (2, "blog.example.org", RType::A),
                (3, "mail.example.org", RType::Mx),
                (4, "nope.example.org", RType::A),
            ] {
                let q = Message::query(id, DnsName::parse(name).unwrap(), rtype);
                sock.send_to(SERVER_IP, 53, q.encode());
                let (_, _, wire) = sock.recv_from().await.unwrap();
                let r = Message::parse(&wire).unwrap();
                println!(
                    "[resolver] {name} {:?} -> rcode={:?}, {} answer(s) in {} bytes",
                    rtype,
                    r.rcode,
                    r.answers.len(),
                    wire.len()
                );
                for a in &r.answers {
                    println!("[resolver]   {} ttl={} {:?}", a.name, a.ttl, a.rdata);
                }
            }
            0
        })
    });
    client.add_device(Box::new(front_c));
    let cdom = hv.create_domain("resolver", 32, Box::new(client));

    hv.run_until(Time::ZERO + Dur::secs(10));
    assert_eq!(hv.exit_code(cdom), Some(0));
    println!(
        "[world] done at {} ({} event-channel notifications)",
        hv.now(),
        hv.stats().notifications
    );
}
