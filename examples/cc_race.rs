//! CC race: NewReno vs CUBIC over a seeded loss × delay grid.
//!
//! The congestion-control seam introduced by the TCP decomposition makes
//! the algorithm a per-connection [`CongAlg`] choice; this scenario races
//! the two implementations over identical conditioned links and reports
//! goodput, retransmissions and a congestion-window trajectory for each
//! grid cell. `scripts/bench.sh --cc` distils the output into
//! `BENCH_cc.json`; `scripts/verify.sh --cc` double-runs it under fixed
//! seeds and byte-diffs the stdout.
//!
//! ```text
//! cargo run --release --example cc_race
//! ```
//!
//! Knobs (all optional):
//!
//! * `MIRAGE_CC_SEED`  — netem decision seed            (default 42)
//! * `MIRAGE_CC_BYTES` — payload bytes per transfer     (default 4 MiB)
//!
//! Everything printed on **stdout** is a function of virtual time only and
//! is byte-identical across same-seed runs.

use std::sync::Arc;

use mirage::devices::netfront::{CopyDiscipline, Netfront};
use mirage::devices::{DriverDomain, Netem, NetemConfig, Xenstore};
use mirage::hypervisor::{Dur, Hypervisor, RunOutcome, Time};
use mirage::net::{tcp, Ipv4Addr, Mac, Stack, StackConfig};
use mirage::runtime::UnikernelGuest;
use mirage_testkit::sync::Mutex;

const TX_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const RX_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Virtual time between congestion-window samples on the sender.
const CWND_SAMPLE_PERIOD: Dur = Dur::millis(25);
/// Trajectory samples kept per run (evenly thinned if more were taken).
const CWND_SAMPLES_KEPT: usize = 10;

/// One conditioned transfer's results, all functions of virtual time.
struct RaceReport {
    /// Payload bytes delivered (always the full transfer on success).
    bytes: usize,
    /// Virtual time from first connect attempt to receipt.
    elapsed: Dur,
    /// Sender-side counters snapshotted before close.
    stats: tcp::TcpStats,
    /// `(virtual ms, cwnd bytes)` samples along the transfer.
    cwnd_trajectory: Vec<(u64, u64)>,
}

/// Runs one `bytes`-long transfer under `alg` through a switch conditioned
/// by `cfg`, seeded from `(seed, cell)`. The harness mirrors the chaos
/// suite's `run_lossy_tcp`: two unikernel guests, a netem-conditioned
/// driver domain, virtual-time everything.
fn race(seed: u64, cell: &'static str, alg: tcp::CongAlg, cfg: NetemConfig, bytes: usize) -> RaceReport {
    let xs = Xenstore::new();
    let mut hv = Hypervisor::new();
    hv.set_step_budget(400_000_000);

    let mut dom0 = DriverDomain::new(xs.clone());
    dom0.set_netem(Netem::from_seed(cfg, seed, cell));
    hv.create_domain("dom0", 512, Box::new(dom0));

    // Bound the advertised window so in-flight data respects the switch
    // queueing budget, and cap the RTO so lossy cells back off on a
    // test-sized timescale — identical tuning for both algorithms, the
    // congestion controller is the only variable.
    let tcp_cfg = tcp::TcpConfig::builder()
        .recv_buf(64 * 1024)
        .rto_max(Dur::secs(2))
        .congestion(alg)
        .build()
        .expect("valid tcp config");
    let rx_cfg = StackConfig::builder(RX_IP)
        .tcp(tcp_cfg.clone())
        .build()
        .expect("valid stack config");
    let tx_cfg = StackConfig::builder(TX_IP)
        .tcp(tcp_cfg)
        .build()
        .expect("valid stack config");

    let payload: Arc<Vec<u8>> = Arc::new(
        (0..bytes)
            .map(|i| (i.wrapping_mul(31).wrapping_add(7) & 0xFF) as u8)
            .collect(),
    );

    // Receiver: accept, absorb the payload, send a 1-byte receipt, park.
    let rx_done: Arc<Mutex<Option<usize>>> = Arc::new(Mutex::new(None));
    let rx_out = Arc::clone(&rx_done);
    let (front_rx, nh_rx) = Netfront::new(xs.clone(), "cc-rx", Mac::local(2).0, CopyDiscipline::ZeroCopy);
    let mut rx_guest = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh_rx, rx_cfg);
        let rt2 = rt.clone();
        rt.spawn(async move {
            let mut listener = stack.tcp_listen(5001).await.unwrap();
            let mut stream = listener.accept().await.unwrap();
            let mut got = 0usize;
            while got < bytes {
                match stream.read().await {
                    Some(chunk) => got += chunk.len(),
                    None => break,
                }
            }
            stream.write(b"K");
            *rx_out.lock() = Some(got);
            // Park: a dead domain takes its retransmissions with it.
            loop {
                rt2.sleep(Dur::secs(60)).await;
            }
        })
    });
    rx_guest.add_device(Box::new(front_rx));
    hv.create_domain("cc-rx", 128, Box::new(rx_guest));

    // Sender: connect, stream, sample cwnd on a virtual-time cadence,
    // await the receipt, snapshot stats while the connection still exists.
    type TxReport = (Dur, tcp::TcpStats, Vec<(u64, u64)>);
    let tx_done: Arc<Mutex<Option<TxReport>>> = Arc::new(Mutex::new(None));
    let tx_out = Arc::clone(&tx_done);
    let tx_payload = Arc::clone(&payload);
    let (front_tx, nh_tx) = Netfront::new(xs.clone(), "cc-tx", Mac::local(1).0, CopyDiscipline::ZeroCopy);
    let mut tx_guest = UnikernelGuest::new(move |_env, rt| {
        let stack = Stack::spawn(rt, nh_tx, tx_cfg);
        let rt2 = rt.clone();
        rt.spawn(async move {
            rt2.sleep(Dur::millis(5)).await;
            let start = rt2.now();
            let mut stream = loop {
                match stack.tcp_connect(RX_IP, 5001).await {
                    Ok(s) => break s,
                    Err(_) => rt2.sleep(Dur::millis(50)).await,
                }
            };
            let mut trajectory: Vec<(u64, u64)> = Vec::new();
            let mut next_sample = rt2.now();
            let mut sent = 0usize;
            while sent < tx_payload.len() {
                // Keep the app at most 128 KiB ahead of the wire (a bounded
                // send buffer): the write loop then spans the whole drain in
                // virtual time, so the cwnd samples trace the transfer
                // instead of its first tick.
                loop {
                    let s = match stream.stats().await {
                        Ok(s) => s,
                        Err(_) => break,
                    };
                    if rt2.now() >= next_sample {
                        trajectory.push((rt2.now().since(start).as_millis_f64() as u64, s.cwnd));
                        next_sample = rt2.now() + CWND_SAMPLE_PERIOD;
                    }
                    if (sent as u64).saturating_sub(s.bytes_out) <= 128 * 1024 {
                        break;
                    }
                    rt2.sleep(Dur::millis(5)).await;
                }
                let n = (tx_payload.len() - sent).min(16 * 1024);
                stream.write(&tx_payload[sent..sent + n]);
                sent += n;
                rt2.yield_now().await;
            }
            let mut receipt = false;
            while !receipt {
                match stream.read().await {
                    Some(chunk) => receipt = !chunk.is_empty(),
                    None => break,
                }
            }
            let stats = stream.stats().await.expect("stats before close");
            let elapsed = rt2.now().since(start);
            *tx_out.lock() = Some((elapsed, stats, trajectory));
            stream.close();
            loop {
                rt2.sleep(Dur::secs(60)).await;
            }
        })
    });
    tx_guest.add_device(Box::new(front_tx));
    hv.create_domain("cc-tx", 128, Box::new(tx_guest));

    let deadline = Time::ZERO + Dur::secs(300);
    loop {
        let outcome = hv.run_until(hv.now() + Dur::millis(100));
        if rx_done.lock().is_some() && tx_done.lock().is_some() {
            break;
        }
        assert!(
            outcome == RunOutcome::TimeLimit && hv.now() < deadline,
            "[{cell}] transfer stalled at {:?}; reproduce with MIRAGE_CC_SEED={seed}",
            hv.now(),
        );
    }

    let received = rx_done.lock().take().expect("receiver reported");
    assert_eq!(received, bytes, "[{cell}] short delivery (seed {seed})");
    let (elapsed, stats, mut cwnd_trajectory) = tx_done.lock().take().expect("sender reported");
    // Thin the trajectory to a bounded, evenly spaced sample set so the
    // stdout (and BENCH_cc.json) stay small at any transfer size.
    if cwnd_trajectory.len() > CWND_SAMPLES_KEPT {
        let step = cwnd_trajectory.len() as f64 / CWND_SAMPLES_KEPT as f64;
        cwnd_trajectory = (0..CWND_SAMPLES_KEPT)
            .map(|i| cwnd_trajectory[(i as f64 * step) as usize])
            .collect();
    }
    RaceReport {
        bytes,
        elapsed,
        stats,
        cwnd_trajectory,
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = env_u64("MIRAGE_CC_SEED", 42);
    let bytes = env_u64("MIRAGE_CC_BYTES", 4 * 1024 * 1024) as usize;

    // The loss × delay grid: clean/lossy links at LAN and WAN-ish RTTs.
    // Cell names feed the netem seed fork, so every cell sees its own
    // (reproducible) fault schedule.
    let grid: &[(&'static str, f64, Dur)] = &[
        ("loss0.0_delay1ms", 0.0, Dur::millis(1)),
        ("loss0.0_delay10ms", 0.0, Dur::millis(10)),
        ("loss0.5_delay1ms", 0.005, Dur::millis(1)),
        ("loss0.5_delay10ms", 0.005, Dur::millis(10)),
        ("loss2.0_delay1ms", 0.02, Dur::millis(1)),
        ("loss2.0_delay10ms", 0.02, Dur::millis(10)),
    ];

    println!("== cc race ==");
    println!("seed     : {seed}");
    println!("transfer : {bytes} bytes per run");
    for &(cell, loss, delay) in grid {
        println!("cell {cell}");
        for alg in [tcp::CongAlg::NewReno, tcp::CongAlg::Cubic] {
            let cfg = NetemConfig {
                drop: loss,
                delay,
                ..NetemConfig::default()
            };
            let r = race(seed, cell, alg, cfg, bytes);
            let secs = r.elapsed.as_secs_f64();
            let goodput_mbps = (r.bytes as f64 * 8.0) / secs / 1e6;
            let name = match alg {
                tcp::CongAlg::NewReno => "newreno",
                tcp::CongAlg::Cubic => "cubic",
            };
            let samples: Vec<String> = r
                .cwnd_trajectory
                .iter()
                .map(|(ms, cwnd)| format!("{ms}:{cwnd}"))
                .collect();
            println!(
                "  {name:<7}: goodput {goodput_mbps:.3} Mb/s, elapsed {:.3} s, \
                 retrans {} (fast {}, rto {}), cwnd[ms:bytes] {}",
                secs,
                r.stats.total_retransmits(),
                r.stats.fast_retransmits,
                r.stats.rto_retransmits,
                samples.join(" "),
            );
        }
    }
}
