//! SMP: the Figure 8 throughput matrix across vCPU counts, plus the C1M
//! quiet-tick claim split per core.
//!
//! Two mirage unikernels (sender and receiver) each run a
//! [`Runtime::smp`] executor with one net-stack shard worker per vCPU; a
//! multi-queue netfront fans RX frames to per-core ingress rings by RSS
//! hash, so every flow's TCB is only ever touched by the core that owns
//! its shard. The matrix runs {1, 16} bulk flows at {1, 2, 4, 8} vCPUs
//! and reports aggregate goodput; the 16-flow row is the saturating one
//! the scaling gates in `scripts/bench.sh --smp` assert over (>=1.7x at
//! 2 vCPUs, >=3x at 4 vCPUs). The single-core 16-flow cell collapses
//! under congestion — the C10K story — which is exactly the failure mode
//! the extra cores remove.
//!
//! ```text
//! cargo run --release --example smp
//! ```
//!
//! Knobs (all optional):
//!
//! * `MIRAGE_SMP_BYTES` — bytes per flow in the matrix   (default 200_000)
//! * `MIRAGE_SMP_CONNS` — idle connections for the split (default 2048)
//!
//! Everything printed on **stdout** is a function of virtual time only
//! and is byte-identical across runs (`scripts/verify.sh --smp` diffs a
//! double run); wall-clock timings go to **stderr**.

use std::time::Instant;

use mirage::baseline::netperf::TcpEndpoint;
use mirage::hypervisor::Dur;
use mirage_bench::netsim::{idle_smp, iperf_smp};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let bytes = env_usize("MIRAGE_SMP_BYTES", 200_000);
    let conns = env_usize("MIRAGE_SMP_CONNS", 2048);

    println!("transfer   : {bytes} bytes/flow");

    let mut saturating = Vec::new();
    for flows in [1usize, 16] {
        for vcpus in [1usize, 2, 4, 8] {
            let t0 = Instant::now();
            let r = iperf_smp(TcpEndpoint::Mirage, TcpEndpoint::Mirage, vcpus, flows, bytes);
            eprintln!(
                "wall: cell flows={flows} vcpus={vcpus} took {:.2} s",
                t0.elapsed().as_secs_f64()
            );
            println!(
                "cell flows={flows:<2} vcpus={vcpus} : goodput {:.1} Mb/s ({} bytes)",
                r.mbps, r.bytes
            );
            if flows == 16 {
                saturating.push((vcpus, r.mbps));
            }
        }
    }

    let base = saturating
        .iter()
        .find(|(v, _)| *v == 1)
        .map(|(_, m)| *m)
        .expect("1-vCPU cell present");
    let speedup = |want: usize| {
        saturating
            .iter()
            .find(|(v, _)| *v == want)
            .map(|(_, m)| m / base)
            .expect("cell present")
    };
    println!(
        "scaling    : x{:.2} at 2 vcpus, x{:.2} at 4 vcpus, x{:.2} at 8 vcpus (16-flow row)",
        speedup(2),
        speedup(4),
        speedup(8)
    );

    // C1M quiet-tick split per core: a 4-vCPU server holds idle
    // keep-alive connections through a 64 ms quiet window; an idle
    // connection arms no deadline, so every core's wheel must stay
    // silent — the O(due work) claim holds per core, not just in
    // aggregate.
    let t0 = Instant::now();
    let r = idle_smp(4, conns, Dur::millis(64));
    eprintln!("wall: idle split took {:.2} s", t0.elapsed().as_secs_f64());
    println!("idle split : {} conns held on 4 vcpus, 64 ms quiet window", r.established);
    for (core, (held, polls)) in r
        .conns_per_core
        .iter()
        .zip(&r.quiet_polls_per_core)
        .enumerate()
    {
        println!("  core {core}   : conns {held:>5}, quiet timer polls {polls}");
    }
}
