//! C1M: one million concurrent connections against a single appliance.
//!
//! The paper's pitch is that a unikernel appliance is cheap enough to hold
//! open "a connection per customer" — this scenario proves the stack's
//! idle-connection cost is O(due work), not O(connections). A fleet of
//! client domains ramps mostly-idle keep-alive HTTP connections against one
//! server appliance while a hot subset streams requests the whole time;
//! the virtual-time tick cost is sampled at 10k and at full scale, and a
//! 1000-domain boot storm (figure 6 at 20x fleet size) closes the run.
//!
//! ```text
//! cargo run --release --example c1m
//! ```
//!
//! Knobs (all optional):
//!
//! * `MIRAGE_C1M_CONNS`   — idle keep-alive connections (default 1_000_000)
//! * `MIRAGE_C1M_HOT`     — streaming-hot connections   (default 1024)
//! * `MIRAGE_C1M_CLIENTS` — client domains, ≤64          (default 64)
//! * `MIRAGE_C1M_STORM`   — boot-storm fleet size        (default 1000)
//!
//! Everything printed on **stdout** is a function of virtual time only and
//! is byte-identical across runs (`scripts/verify.sh --scale` diffs a
//! double run); wall-clock tick costs and RSS go to **stderr**.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mirage::core::{Appliance, Library};
use mirage::devices::netfront::{CopyDiscipline, Netfront};
use mirage::devices::{DriverDomain, Xenstore};
use mirage::hypervisor::toolstack::{BuildMode, DomainSpec, Toolstack};
use mirage::hypervisor::{Dur, Hypervisor, Time};
use mirage::net::{idle_conn_bytes, Ipv4Addr, Mac, Stack, StackConfig, StackStats, TcpStream};
use mirage::runtime::{Runtime, UnikernelGuest};

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 80);

const REQ_IDLE: &[u8] = b"GET /idle HTTP/1.1\r\nHost: c1m\r\nConnection: keep-alive\r\n\r\n";
const REQ_HOT: &[u8] = b"GET /hot HTTP/1.1\r\nHost: c1m\r\nConnection: keep-alive\r\n\r\n";
const RESP_OK: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
const RESP_HOT: &[u8] =
    b"HTTP/1.1 200 OK\r\nContent-Length: 32\r\n\r\nstreaming-chunk-0123456789abcdef";

/// Per-domain connects in flight at once. 64 domains x 6 = 384 frames per
/// switch pass, inside the driver domain's 512-frame queues even with the
/// hot subset's traffic on top — no congestion drops, so no retransmit
/// noise in the latency numbers.
const BATCH: usize = 6;

/// Virtual time between requests on each hot connection.
const HOT_PERIOD: Dur = Dur::millis(20);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Cross-domain scoreboard. All timestamps and counters below are driven
/// by virtual time, so their evolution is deterministic for a fixed seed.
struct Shared {
    established: AtomicU64,
    hot_responses: AtomicU64,
    ramp_paused: AtomicBool,
    hot_paused: AtomicBool,
    latencies: Mutex<Vec<u64>>,
    parked_client: Mutex<Vec<TcpStream>>,
    parked_server: Mutex<Vec<TcpStream>>,
    server_stats: Mutex<StackStats>,
}

fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

async fn serve_conn(mut s: TcpStream, sh: Arc<Shared>) {
    // Read the first request (it may arrive split across segments).
    let mut buf: Vec<u8> = Vec::new();
    let hot = loop {
        let Some(chunk) = s.read().await else { return };
        buf.extend_from_slice(&chunk);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break buf.starts_with(b"GET /hot");
        }
    };
    s.write(RESP_OK);
    if hot {
        // Streaming echo loop: clients pipeline one request at a time, so
        // each read is exactly one request.
        loop {
            let Some(_req) = s.read().await else { return };
            s.write(RESP_HOT);
            sh.hot_responses.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        // Keep-alive: park the stream so the connection stays ESTABLISHED
        // with no task, no timer and no buffered bytes behind it.
        sh.parked_server.lock().unwrap().push(s);
    }
}

/// One measurement window: pause the ramp *and* the hot subset, let
/// in-flight traffic drain, then time a run of quiet virtual-millisecond
/// ticks. With zero due work the measured cost is the tick machinery
/// itself — wheel advance plus executor bookkeeping — which is the
/// quantity the O(due work) claim says must not grow with the idle
/// population. Returns the best wall-clock ns per virtual ms plus the
/// server's timer-poll delta and connection count over the timed part of
/// the window.
fn quiet_window(hv: &mut Hypervisor, sh: &Shared) -> (f64, u64, u64) {
    sh.ramp_paused.store(true, Ordering::Relaxed);
    sh.hot_paused.store(true, Ordering::Relaxed);
    // One hot period plus a few ms lets every hot task finish its round
    // trip in flight and park on the pause flag.
    let settle = HOT_PERIOD + Dur::millis(8);
    let t = hv.now() + settle;
    hv.run_until(t);
    let before = *sh.server_stats.lock().unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..8 {
        let t = hv.now() + Dur::millis(1);
        let w = Instant::now();
        hv.run_until(t);
        best = best.min(w.elapsed().as_nanos() as f64);
    }
    let after = *sh.server_stats.lock().unwrap();
    sh.hot_paused.store(false, Ordering::Relaxed);
    sh.ramp_paused.store(false, Ordering::Relaxed);
    (
        best,
        after.timer_polls - before.timer_polls,
        after.conns,
    )
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn c1m(conns: usize, hot: usize, clients: usize) {
    let shared = Arc::new(Shared {
        established: AtomicU64::new(0),
        hot_responses: AtomicU64::new(0),
        ramp_paused: AtomicBool::new(false),
        hot_paused: AtomicBool::new(false),
        latencies: Mutex::new(Vec::with_capacity(conns)),
        parked_client: Mutex::new(Vec::with_capacity(conns)),
        parked_server: Mutex::new(Vec::with_capacity(conns)),
        server_stats: Mutex::new(StackStats::default()),
    });

    let xs = Xenstore::new();
    let mut hv = Hypervisor::with_pcpus(8);
    hv.create_domain("dom0", 512, Box::new(DriverDomain::new(xs.clone())));

    // The appliance under load: one stack, one listener, a million table
    // entries. Idle handlers park their stream and exit, so live tasks
    // stay bounded by the in-flight batch plus the hot subset.
    let (netf, nh) = Netfront::new(xs.clone(), "c1m-srv", Mac::local(80).0, CopyDiscipline::ZeroCopy);
    let sh = Arc::clone(&shared);
    let mut server = UnikernelGuest::new(move |_env, rt: &Runtime| {
        // Full batches from every client may be half-open at once; keep
        // the stateful path primary (cookies still cover real floods).
        let cfg = StackConfig::builder(SERVER_IP)
            .listen_backlog(4096)
            .build()
            .expect("valid stack config");
        let stack = Stack::spawn(rt, nh, cfg);
        let rt2 = rt.clone();
        rt.spawn(async move {
            let mut listener = stack.tcp_listen(80).await.expect("port 80");
            // Stats monitor: publishes the stack's counters every 500us of
            // virtual time so the host side can read them between ticks.
            {
                let stack2 = stack.clone();
                let sh2 = Arc::clone(&sh);
                let rt3 = rt2.clone();
                rt2.spawn(async move {
                    loop {
                        rt3.sleep(Dur::micros(500)).await;
                        if let Ok(s) = stack2.stack_stats().await {
                            *sh2.server_stats.lock().unwrap() = s;
                        }
                    }
                });
            }
            loop {
                let Ok(stream) = listener.accept().await else {
                    break 0;
                };
                let sh3 = Arc::clone(&sh);
                rt2.spawn(serve_conn(stream, sh3));
            }
        })
    });
    server.add_device(Box::new(netf));
    hv.create_domain("c1m-server", 2048, Box::new(server));

    // Client fleet: each domain owns one stack (16k ephemeral ports) and
    // ramps its share in small awaited batches. Domain 0 also drives the
    // hot subset.
    let per_dom = conns / clients;
    let rem = conns % clients;
    for d in 0..clients {
        let name = format!("c1m-c{d}");
        let (front, nh_c) = Netfront::new(
            xs.clone(),
            &name,
            Mac::local(100 + d as u32).0,
            CopyDiscipline::ZeroCopy,
        );
        let ip = Ipv4Addr::new(10, 0, 0, (100 + d) as u8);
        // Domain 0's hot conns come out of its idle share: each stack has
        // 16,384 ephemeral ports (49152..), and a full 1/64 idle share plus
        // the hot subset would blow that budget and wedge the tail of the
        // ramp on reused quads. Total established stays exactly `conns`.
        let my_hot = if d == 0 { hot } else { 0 };
        let my_conns = (per_dom + usize::from(d < rem)).saturating_sub(my_hot);
        let sh = Arc::clone(&shared);
        let mut guest = UnikernelGuest::new(move |_env, rt: &Runtime| {
            let stack = Stack::spawn(rt, nh_c, StackConfig::static_ip(ip));
            let rt2 = rt.clone();
            rt.spawn(async move {
                // Let the fabric come up, staggered so 64 domains don't
                // ARP/SYN in lockstep.
                rt2.sleep(Dur::millis(5) + Dur::micros(37 * d as u64)).await;

                // Hot subset: connect, then stream a request every
                // HOT_PERIOD forever. These never park — they are the due
                // work every tick must service regardless of idle
                // population.
                for h in 0..my_hot {
                    let stack2 = stack.clone();
                    let sh2 = Arc::clone(&sh);
                    let rt3 = rt2.clone();
                    rt2.spawn(async move {
                        let Ok(mut s) = stack2.tcp_connect(SERVER_IP, 80).await else {
                            return;
                        };
                        sh2.established.fetch_add(1, Ordering::Relaxed);
                        s.write(REQ_HOT); // the first-line path marks this conn hot
                        let Some(_resp) = s.read().await else { return };
                        loop {
                            rt3.sleep(HOT_PERIOD).await;
                            // Quiet-window measurements park the hot
                            // subset so the timed ticks carry zero due
                            // network work.
                            while sh2.hot_paused.load(Ordering::Relaxed) {
                                rt3.sleep(Dur::millis(4)).await;
                            }
                            s.write(REQ_HOT);
                            let Some(_resp) = s.read().await else { return };
                        }
                    });
                    if h % 32 == 31 {
                        rt2.sleep(Dur::micros(500)).await;
                    }
                }

                // Idle ramp: BATCH connects in flight per domain, awaited
                // so the switch queues never see more than
                // clients x BATCH frames in one pass.
                let mut done = 0usize;
                while done < my_conns {
                    while sh.ramp_paused.load(Ordering::Relaxed) {
                        rt2.sleep(Dur::micros(500)).await;
                    }
                    let b = BATCH.min(my_conns - done);
                    let mut handles = Vec::with_capacity(b);
                    for _ in 0..b {
                        let stack2 = stack.clone();
                        let sh2 = Arc::clone(&sh);
                        let rt3 = rt2.clone();
                        handles.push(rt2.spawn(async move {
                            let t0 = rt3.now();
                            let Ok(mut s) = stack2.tcp_connect(SERVER_IP, 80).await else {
                                return;
                            };
                            let dt = rt3.now().since(t0).as_nanos();
                            s.write(REQ_IDLE);
                            let Some(_resp) = s.read().await else { return };
                            sh2.latencies.lock().unwrap().push(dt);
                            sh2.established.fetch_add(1, Ordering::Relaxed);
                            // Park the client half too: both ends idle.
                            sh2.parked_client.lock().unwrap().push(s);
                        }));
                    }
                    for h in handles {
                        h.await;
                    }
                    done += b;
                }
                // Hold every connection open until the host tears the
                // world down.
                rt2.sleep_until(Time::MAX).await;
                0
            })
        });
        guest.add_device(Box::new(front));
        hv.create_domain(&name, 64, Box::new(guest));
    }

    // Drive the world a virtual millisecond at a time, sampling tick cost
    // once 10k connections are up and again at full scale.
    let total_target = conns as u64;
    let mid_target = 10_000.min(total_target / 2);
    let limit = Time::ZERO + Dur::secs(3600);
    let mut mid: Option<(f64, u64, u64)> = None;
    let full;
    let wall_start = Instant::now();
    let mut next_report = 0u64;
    loop {
        let t = hv.now() + Dur::millis(1);
        hv.run_until(t);
        let est = shared.established.load(Ordering::Relaxed);
        if est >= next_report {
            eprintln!(
                "[wall] progress     : {est} established at {} ({:.1}s wall)",
                hv.now(),
                wall_start.elapsed().as_secs_f64()
            );
            next_report = est + (total_target / 20).max(1);
        }
        if mid.is_none() && est >= mid_target {
            mid = Some(quiet_window(&mut hv, &shared));
        }
        if est >= total_target {
            full = quiet_window(&mut hv, &shared);
            break;
        }
        assert!(
            hv.now() < limit,
            "ramp stalled at {est}/{total_target} established"
        );
    }
    let (mid_wall, mid_polls, mid_conns) = mid.expect("mid window ran");
    let (full_wall, full_polls, full_conns) = full;
    let hot_resp = shared.hot_responses.load(Ordering::Relaxed);
    let established = shared.established.load(Ordering::Relaxed);

    let mut lats = std::mem::take(&mut *shared.latencies.lock().unwrap());
    lats.sort_unstable();
    let p50 = percentile(&lats, 0.50);
    let p99 = percentile(&lats, 0.99);

    // Deterministic summary (stdout): pure virtual-time facts.
    println!("== c1m ==");
    println!("connections held    : {full_conns} on the server ({established} client-side)");
    println!(
        "hot subset          : {hot} streaming every {}ms, {hot_resp} responses by t={}",
        HOT_PERIOD.as_nanos() / 1_000_000,
        hv.now()
    );
    println!(
        "accept latency      : p50 {:.1} us, p99 {:.1} us over {} handshakes (virtual)",
        p50 as f64 / 1000.0,
        p99 as f64 / 1000.0,
        lats.len()
    );
    println!(
        "idle conn audit     : {} bytes/conn in stack tables (struct + index)",
        idle_conn_bytes()
    );
    println!(
        "timer polls / 8ms   : {mid_polls} at {mid_conns} conns -> {full_polls} at {full_conns} conns"
    );
    println!("virtual time at full: {}", hv.now());

    // Wall-clock facts (stderr): real but machine-dependent.
    eprintln!(
        "[wall] quiet tick   : {:.0} ns/virtual-ms at {mid_conns} conns, {:.0} ns/virtual-ms at {full_conns} conns (x{:.2})",
        mid_wall,
        full_wall,
        full_wall / mid_wall.max(1.0)
    );
    if let Some(rss) = rss_bytes() {
        eprintln!(
            "[wall] rss          : {} MiB total, {:.0} bytes/conn amortised",
            rss >> 20,
            rss as f64 / full_conns.max(1) as f64
        );
    }
}

fn boot_storm(fleet: usize) {
    let mut hv = Hypervisor::with_pcpus(8);
    let ts = Toolstack::new(BuildMode::Parallel);
    let specs: Vec<DomainSpec> = (0..fleet)
        .map(|i| {
            let appliance = Appliance::builder(&format!("c1m-storm-{i}"))
                .library(Library::APP_DNS)
                .dynamic_config("ip")
                .layout_seed(0xC1_0000 + i as u64)
                .build()
                .expect("valid appliance");
            let guest = appliance.into_guest(16, move |env, rt| {
                env.observe("boot-ready");
                rt.spawn(async move { i as i64 })
            });
            DomainSpec::new(format!("c1m-storm-{i}"), 16, Box::new(guest))
        })
        .collect();
    let built = ts.build(&mut hv, specs);
    hv.run();

    let mut ready: Vec<u64> = built
        .iter()
        .map(|b| {
            hv.observation(b.dom, "boot-ready")
                .expect("booted")
                .at
                .since(b.requested)
                .as_nanos()
        })
        .collect();
    ready.sort_unstable();
    let storm_end = built
        .iter()
        .map(|b| hv.observation(b.dom, "boot-ready").expect("booted").at)
        .max()
        .expect("fleet non-empty");
    for b in &built {
        assert_eq!(hv.exit_code(b.dom).map(|c| c >= 0), Some(true));
        assert!(hv.address_space(b.dom).is_sealed());
    }

    println!("== boot storm ==");
    println!("fleet               : {fleet} sealed DNS unikernels");
    println!(
        "boot latency        : p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        percentile(&ready, 0.50) as f64 / 1e6,
        percentile(&ready, 0.99) as f64 / 1e6,
        ready[ready.len() - 1] as f64 / 1e6
    );
    println!(
        "whole storm ready at: {:.1} ms of virtual time",
        storm_end.since(Time::ZERO).as_millis_f64()
    );
}

fn main() {
    let conns = env_usize("MIRAGE_C1M_CONNS", 1_000_000);
    let hot = env_usize("MIRAGE_C1M_HOT", 1024);
    let clients = env_usize("MIRAGE_C1M_CLIENTS", 64).clamp(1, 64);
    let storm = env_usize("MIRAGE_C1M_STORM", 1000);

    if conns > 0 {
        c1m(conns, hot, clients);
    }
    if storm > 0 {
        boot_storm(storm);
    }
}
